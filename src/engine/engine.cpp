#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "engine/thread_pool.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/request_context.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace patchecko {

namespace {

struct EngineMetrics {
  obs::Counter& jobs_completed =
      obs::Registry::global().counter("engine.jobs_completed");
  obs::Counter& job_cache_hits =
      obs::Registry::global().counter("engine.job_cache_hits");
  obs::Gauge& ready_depth = obs::Registry::global().gauge("engine.ready_depth");
  obs::Histogram& analyze_seconds =
      obs::Registry::global().histogram("engine.job_seconds.analyze");
  obs::Histogram& detect_seconds =
      obs::Registry::global().histogram("engine.job_seconds.detect");
  obs::Histogram& patch_seconds =
      obs::Registry::global().histogram("engine.job_seconds.patch");
  obs::Histogram& analyze_cpu_seconds =
      obs::Registry::global().histogram("engine.job_cpu_seconds.analyze");
  obs::Histogram& detect_cpu_seconds =
      obs::Registry::global().histogram("engine.job_cpu_seconds.detect");
  obs::Histogram& patch_cpu_seconds =
      obs::Registry::global().histogram("engine.job_cpu_seconds.patch");
  obs::Counter& job_allocations =
      obs::Registry::global().counter("engine.job_allocations");
  obs::Gauge& rss_kb = obs::Registry::global().gauge("process.rss_kb");

  obs::Histogram& job_histogram(JobKind kind) {
    switch (kind) {
      case JobKind::analyze: return analyze_seconds;
      case JobKind::detect: return detect_seconds;
      case JobKind::patch: return patch_seconds;
    }
    return analyze_seconds;
  }

  obs::Histogram& cpu_histogram(JobKind kind) {
    switch (kind) {
      case JobKind::analyze: return analyze_cpu_seconds;
      case JobKind::detect: return detect_cpu_seconds;
      case JobKind::patch: return patch_cpu_seconds;
    }
    return analyze_cpu_seconds;
  }

  static EngineMetrics& get() {
    static EngineMetrics metrics;
    return metrics;
  }
};

std::string_view job_span_name(JobKind kind) {
  switch (kind) {
    case JobKind::analyze: return "job.analyze";
    case JobKind::detect: return "job.detect";
    case JobKind::patch: return "job.patch";
  }
  return "job";
}

/// Exact, locale-independent double rendering: %.17g round-trips every
/// finite double, so canonical_text() equality == bitwise result equality.
std::string fmt_exact(double value) {
  char out[40];
  std::snprintf(out, sizeof(out), "%.17g", value);
  return out;
}

void append_outcome(std::ostringstream& out, const char* query,
                    const DetectionOutcome& outcome) {
  out << "query " << query << ": total=" << outcome.total
      << " tp=" << outcome.true_positives << " tn=" << outcome.true_negatives
      << " fp=" << outcome.false_positives
      << " fn=" << outcome.false_negatives << " executed=" << outcome.executed
      << " rank=" << outcome.rank_of_target << "\n  candidates=[";
  for (std::size_t i = 0; i < outcome.candidates.size(); ++i) {
    if (i != 0) out << ',';
    out << outcome.candidates[i];
  }
  out << "]\n  ranking=[";
  for (std::size_t i = 0; i < outcome.ranking.size(); ++i) {
    const RankedCandidate& ranked = outcome.ranking[i];
    if (i != 0) out << ' ';
    out << ranked.function_index << ':' << fmt_exact(ranked.distance) << ':'
        << fmt_exact(ranked.secondary);
  }
  out << "]\n";
}

CacheStats stats_delta(const CacheStats& after, const CacheStats& before) {
  CacheStats delta;
  delta.feature_hits = after.feature_hits - before.feature_hits;
  delta.feature_misses = after.feature_misses - before.feature_misses;
  delta.outcome_hits = after.outcome_hits - before.outcome_hits;
  delta.outcome_misses = after.outcome_misses - before.outcome_misses;
  delta.disk_loads = after.disk_loads - before.disk_loads;
  delta.stores = after.stores - before.stores;
  return delta;
}

}  // namespace

std::string_view job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::analyze: return "analyze";
    case JobKind::detect: return "detect";
    case JobKind::patch: return "patch";
  }
  return "?";
}

std::string ScanReport::canonical_text() const {
  std::ostringstream out;
  for (const CveScanResult& result : results) {
    out << "== " << result.cve_id << " library " << result.library << " ==\n";
    if (result.library_missing) {
      out << "library not in image\n";
      continue;
    }
    append_outcome(out, "vulnerable", result.from_vulnerable);
    append_outcome(out, "patched", result.from_patched);
    if (!result.report.decision) {
      out << "match: none\n";
      continue;
    }
    const PatchDecision& decision = *result.report.decision;
    out << "match: function=" << *result.report.matched_function
        << " verdict="
        << (decision.verdict == PatchVerdict::patched ? "patched"
                                                      : "vulnerable")
        << " votes=" << fmt_exact(decision.votes_vulnerable) << ':'
        << fmt_exact(decision.votes_patched)
        << " dist=" << fmt_exact(decision.dynamic_distance_vulnerable) << ':'
        << fmt_exact(decision.dynamic_distance_patched) << "\n";
    for (const std::string& note : decision.evidence)
      out << "evidence: " << note << "\n";
  }
  return out.str();
}

std::string ScanReport::summary_text() const {
  std::ostringstream out;
  int vulnerable = 0, patched = 0, unresolved = 0;
  for (const CveScanResult& result : results) {
    if (result.library_missing || !result.report.decision) {
      ++unresolved;
      continue;
    }
    (result.report.decision->verdict == PatchVerdict::patched ? patched
                                                              : vulnerable)++;
  }
  int stalled = 0;
  for (const CveScanResult& result : results) stalled += result.stalled ? 1 : 0;
  out << results.size() << " CVEs scanned across " << analyzed_libraries
      << " libraries: " << vulnerable << " vulnerable, " << patched
      << " patched, " << unresolved << " unresolved";
  if (stalled != 0) out << " (" << stalled << " stalled by watchdog)";
  out << "\n";
  if (interrupted)
    out << "INTERRUPTED: run cancelled mid-flight, " << jobs_cancelled
        << " queued jobs dropped; results above are partial\n";
  char line[160];
  std::snprintf(line, sizeof(line),
                "wall time %.2fs over %zu jobs; cache: %llu hits / %llu "
                "misses (%llu from disk, %llu stores)\n",
                total_seconds, timings.size(),
                static_cast<unsigned long long>(cache.hits()),
                static_cast<unsigned long long>(cache.misses()),
                static_cast<unsigned long long>(cache.disk_loads),
                static_cast<unsigned long long>(cache.stores));
  out << line;
  std::vector<const JobTiming*> slowest;
  for (const JobTiming& timing : timings) slowest.push_back(&timing);
  std::sort(slowest.begin(), slowest.end(),
            [](const JobTiming* a, const JobTiming* b) {
              return a->seconds > b->seconds;
            });
  const std::size_t shown = std::min<std::size_t>(slowest.size(), 5);
  for (std::size_t i = 0; i < shown; ++i) {
    std::snprintf(line, sizeof(line), "  %-7s %-20s %8.3fs%s\n",
                  std::string(job_kind_name(slowest[i]->kind)).c_str(),
                  slowest[i]->label.c_str(), slowest[i]->seconds,
                  slowest[i]->cache_hit ? "  (cache)" : "");
    out << line;
  }
  return out.str();
}

obs::DecisionRecord decision_record(const CveScanResult& result) {
  obs::DecisionRecord record;
  record.cve_id = result.cve_id;
  record.library = result.library;
  record.library_missing = result.library_missing;
  record.stalled = result.stalled;
  if (result.library_missing) return record;
  record.from_vulnerable = result.from_vulnerable.provenance;
  record.from_patched = result.from_patched.provenance;
  record.pool = result.report.pool;
  if (result.report.matched_function)
    record.matched_function =
        static_cast<std::uint64_t>(*result.report.matched_function);
  if (result.report.decision) {
    const PatchDecision& decision = *result.report.decision;
    record.has_verdict = true;
    record.verdict_patched = decision.verdict == PatchVerdict::patched;
    record.votes_vulnerable = decision.votes_vulnerable;
    record.votes_patched = decision.votes_patched;
    record.dynamic_distance_vulnerable = decision.dynamic_distance_vulnerable;
    record.dynamic_distance_patched = decision.dynamic_distance_patched;
    record.evidence = decision.evidence;
  }
  return record;
}

std::string ScanReport::provenance_jsonl() const {
  // request_id is appended only when set so one-shot provenance stays
  // byte-identical across warm-cache reruns (the CI comparison).
  std::string out = "{\"type\":\"meta\",\"format\":\"patchecko-provenance\","
                    "\"version\":1,\"results\":" +
                    std::to_string(results.size());
  if (request_id != 0)
    out += ",\"request_id\":" + std::to_string(request_id);
  out += "}\n";
  for (const CveScanResult& result : results)
    out += obs::decision_jsonl_line(decision_record(result)) + "\n";
  return out;
}

ScanEngine::ScanEngine(EngineConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_dir, config_.use_cache) {}

ScanReport ScanEngine::run(const ScanRequest& request,
                           const ProgressFn& progress) {
  if (request.model == nullptr || request.firmware == nullptr ||
      request.database == nullptr)
    throw std::invalid_argument(
        "ScanRequest needs model, firmware, and database");

  const Stopwatch total_watch;
  const CacheStats stats_before = cache_.stats();
  ScanReport report;
  report.request_id = request.request_id;

  // --- select entries and resolve their libraries --------------------------
  const std::set<std::string> only(request.cve_ids.begin(),
                                   request.cve_ids.end());
  std::vector<const CveEntry*> entries;
  for (const CveEntry& entry : request.database->entries())
    if (only.empty() || only.count(entry.spec.cve_id) != 0)
      entries.push_back(&entry);

  std::map<std::string, const LibraryBinary*> by_name;
  for (const LibraryBinary& library : request.firmware->libraries)
    by_name[library.name] = &library;

  struct LibSlot {
    const LibraryBinary* binary = nullptr;
    AnalyzedLibrary analyzed;
    Digest digest;  // valid only when the cache is enabled
  };
  std::vector<LibSlot> libs;
  std::map<std::string, std::size_t> lib_slot_by_name;
  std::vector<std::size_t> entry_lib(entries.size(), 0);

  report.results.resize(entries.size());
  for (std::size_t e = 0; e < entries.size(); ++e) {
    CveScanResult& result = report.results[e];
    result.cve_id = entries[e]->spec.cve_id;
    result.library = entries[e]->spec.library;
    const auto lib_it = by_name.find(result.library);
    if (lib_it == by_name.end()) {
      result.library_missing = true;
      continue;
    }
    const auto [slot_it, inserted] =
        lib_slot_by_name.try_emplace(result.library, libs.size());
    if (inserted) libs.push_back(LibSlot{lib_it->second, {}, {}});
    entry_lib[e] = slot_it->second;
  }
  report.analyzed_libraries = libs.size();

  // --- build the job graph -------------------------------------------------
  // Ids: [0, L) analyze per library slot, then per entry e a detect job
  // L + 2e and a patch job L + 2e + 1.
  struct Job {
    JobKind kind = JobKind::analyze;
    std::size_t target = 0;  // library slot (analyze) or entry index
    std::vector<std::size_t> dependents;
    int unmet = 0;
    bool skipped = false;  // missing library: no work to do
    bool done = false;     // executed (set by the job body; read post-drain)
  };
  const std::size_t lib_jobs = libs.size();
  std::vector<Job> jobs(lib_jobs + 2 * entries.size());
  for (std::size_t l = 0; l < lib_jobs; ++l)
    jobs[l] = Job{JobKind::analyze, l, {}, 0, false, false};
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const std::size_t detect_id = lib_jobs + 2 * e;
    const std::size_t patch_id = detect_id + 1;
    const bool missing = report.results[e].library_missing;
    jobs[detect_id] = Job{JobKind::detect, e, {patch_id}, missing ? 0 : 1,
                          missing, false};
    jobs[patch_id] = Job{JobKind::patch, e, {}, 1, missing, false};
    if (!missing) jobs[entry_lib[e]].dependents.push_back(detect_id);
  }

  // --- per-run pipeline + digests ------------------------------------------
  PipelineConfig pipeline_config = config_.pipeline;
  pipeline_config.worker_threads = config_.jobs;
  const Patchecko pipeline(request.model, pipeline_config);
  const bool caching = config_.use_cache;
  const Digest model_digest = caching ? digest_model(*request.model) : Digest{};
  const Digest config_digest =
      caching ? digest_pipeline_config(pipeline_config) : Digest{};

  // --- run-health instrumentation ------------------------------------------
  // The watchdog exists only when a deadline was configured; the heartbeat
  // is caller-owned and merely driven from here. The guard finishes the
  // heartbeat even when a job throws, so the stream always ends with a
  // terminal snapshot.
  std::optional<obs::StallWatchdog> watchdog;
  if (config_.watchdog.soft_deadline_seconds > 0.0 ||
      config_.watchdog.hard_deadline_seconds > 0.0) {
    watchdog.emplace(config_.watchdog);
    watchdog->start();
  }
  const std::atomic<bool>* const interrupt = config_.interrupt;
  const auto interrupted = [interrupt] {
    return interrupt != nullptr && interrupt->load(std::memory_order_relaxed);
  };
  obs::Heartbeat* const heartbeat =
      request.heartbeat != nullptr ? request.heartbeat : config_.heartbeat;
  struct HeartbeatGuard {
    obs::Heartbeat* heartbeat;
    ~HeartbeatGuard() {
      if (heartbeat != nullptr) heartbeat->finish();
    }
  } heartbeat_guard{heartbeat};
  if (heartbeat != nullptr) heartbeat->begin(jobs.size());

  std::mutex event_mutex;
  const auto emit = [&](JobKind kind, std::string label, double seconds,
                        bool cache_hit, const obs::ResourceSample& resources,
                        bool stalled) {
    if (heartbeat != nullptr) heartbeat->job_done();
    if (obs::events_enabled())
      obs::EventLog::global().emit(
          obs::Severity::info, "engine.job",
          {obs::Field::text("kind", std::string(job_kind_name(kind))),
           obs::Field::text("label", label),
           obs::Field::f64("seconds", seconds),
           obs::Field::u64("cache_hit", cache_hit ? 1 : 0),
           obs::Field::f64("cpu_s", resources.cpu_seconds),
           obs::Field::u64("allocs", resources.allocations),
           obs::Field::u64("stalled", stalled ? 1 : 0)});
    std::lock_guard<std::mutex> lock(event_mutex);
    report.timings.push_back(JobTiming{kind, label, seconds, cache_hit,
                                       resources.cpu_seconds,
                                       resources.allocations, stalled});
    if (progress)
      progress(JobEvent{kind, std::move(label), seconds, cache_hit,
                        report.timings.size() - 1, jobs.size(),
                        resources.cpu_seconds, resources.allocations,
                        stalled});
  };

  const auto execute = [&](std::size_t id) {
    Job& job = jobs[id];
    job.done = true;  // own-job write; read only after the graph drains
    // A waiter helping the pool may run this job while its own job's spans
    // are still open; re-root the profiler stack so the job's subtree hangs
    // off the root wherever it executes — folded exports stay identical
    // across --jobs.
    const obs::ProfileTaskRoot profile_root;
    // Tag this job's spans/events with the owning service request (0 for
    // one-shot runs). The scope must open before the span so the span
    // itself is stamped.
    const obs::RequestScope request_scope(request.request_id);
    const obs::ScopedSpan span(job_span_name(job.kind));

    // Label first: the watchdog needs it while the job is still running.
    std::string label;
    if (job.kind == JobKind::analyze)
      label = libs[job.target].binary->name;
    else
      label = report.results[job.target].cve_id;

    obs::StallWatchdog::Job watchdog_job;
    if (watchdog.has_value())
      watchdog_job = watchdog->job_started(job_kind_name(job.kind), label);
    // The per-job cooperative cancel token: the watchdog's when one exists,
    // otherwise the run-wide interrupt flag doubles as the token so a
    // SIGINT/SIGTERM (or service shutdown) aborts in-flight stages too.
    const std::atomic<bool>* cancel =
        watchdog_job.cancel ? watchdog_job.cancel.get() : interrupt;

    if (job.kind == JobKind::detect && !job.skipped &&
        config_.stall_inject_seconds > 0.0 &&
        label == config_.stall_inject_label)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(config_.stall_inject_seconds));

    const Stopwatch watch;
    // Resource sampling honors the no-op contract: with obs off, no extra
    // clock reads and no /proc access per job.
    const bool obs_on = obs::enabled();
    const obs::ResourceSample resources_start =
        obs_on ? obs::resource_sample() : obs::ResourceSample{};
    bool cache_hit = false;
    bool stalled = false;
    if (job.kind == JobKind::analyze) {
      LibSlot& slot = libs[job.target];
      std::string key;
      if (caching) {
        slot.digest = digest_library(*slot.binary);
        key = features_cache_key(slot.digest);
        if (auto features = cache_.find_features(key);
            features && features->size() == slot.binary->functions.size()) {
          slot.analyzed.binary = slot.binary;
          slot.analyzed.features = std::move(*features);
          cache_hit = true;
        }
      }
      if (!cache_hit) {
        slot.analyzed =
            analyze_library(*slot.binary, pipeline_config.worker_threads);
        if (caching) cache_.store_features(key, slot.analyzed.features);
      }
      // The retrieval index derives from the features alone, so it is
      // rebuilt (deterministically) on cache hits too rather than being
      // persisted — building is much cheaper than feature extraction.
      if (pipeline_config.prefilter_mode != retrieval::PrefilterMode::off)
        ensure_retrieval_index(slot.analyzed);
    } else if (job.kind == JobKind::detect && !job.skipped) {
      const CveEntry& entry = *entries[job.target];
      const LibSlot& slot = libs[entry_lib[job.target]];
      CveScanResult& result = report.results[job.target];
      const Digest entry_digest = caching ? digest_entry(entry) : Digest{};
      const retrieval::QueryCatalog::Entry* query_codes =
          request.query_codes != nullptr
              ? request.query_codes->find(entry.spec.cve_id)
              : nullptr;
      cache_hit = true;
      for (const bool query_is_patched : {false, true}) {
        DetectionOutcome& outcome =
            query_is_patched ? result.from_patched : result.from_vulnerable;
        std::string key;
        if (caching) {
          key = outcome_cache_key(slot.digest, model_digest, config_digest,
                                  entry_digest, query_is_patched);
          if (auto cached = cache_.find_outcome(key)) {
            outcome = std::move(*cached);
            continue;
          }
        }
        cache_hit = false;
        outcome = pipeline.detect(
            entry, slot.analyzed, query_is_patched, cancel,
            query_codes == nullptr
                ? nullptr
                : (query_is_patched ? &query_codes->patched
                                    : &query_codes->vulnerable));
        // A cancelled outcome is partial; caching it would poison every
        // later warm run with the truncated result.
        if (caching && !outcome.cancelled) cache_.store_outcome(key, outcome);
      }
      if (result.from_vulnerable.cancelled || result.from_patched.cancelled) {
        // An interrupt and a watchdog hard deadline share the cooperative
        // cancel mechanism; attribute the outcome to whichever fired.
        if (interrupted())
          result.cancelled = true;
        else
          result.stalled = true;
        stalled = result.stalled;
      }
    } else if (job.kind == JobKind::patch && !job.skipped) {
      const CveEntry& entry = *entries[job.target];
      const LibSlot& slot = libs[entry_lib[job.target]];
      CveScanResult& result = report.results[job.target];
      result.report = pipeline.report_from(entry, slot.analyzed,
                                           result.from_vulnerable,
                                           result.from_patched, cancel);
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        if (interrupted())
          result.cancelled = true;
        else
          result.stalled = true;
        stalled = result.stalled;
      }
    }
    const double seconds = watch.elapsed_seconds();
    const obs::ResourceSample resources =
        obs_on ? obs::resource_delta(resources_start, obs::resource_sample())
               : obs::ResourceSample{};
    if (watchdog.has_value()) watchdog->job_finished(watchdog_job);
    EngineMetrics::get().job_histogram(job.kind).record(seconds);
    if (obs_on) {
      EngineMetrics::get().cpu_histogram(job.kind).record(
          resources.cpu_seconds);
      EngineMetrics::get().job_allocations.add(resources.allocations);
      EngineMetrics::get().rss_kb.set(obs::process_rss_kb());
    }
    EngineMetrics::get().jobs_completed.add();
    if (cache_hit) EngineMetrics::get().job_cache_hits.add();
    emit(job.kind, std::move(label), seconds, cache_hit, resources, stalled);
  };

  // --- scheduler -----------------------------------------------------------
  // The ready-depth gauge mirrors every push/pop exactly (add ±1), so its
  // value is 0 once the graph drains and its max is the true high-water
  // mark of runnable-but-not-running jobs.
  obs::Gauge& ready_depth = EngineMetrics::get().ready_depth;
  std::mutex sched_mutex;
  std::deque<std::size_t> ready;
  for (std::size_t id = 0; id < jobs.size(); ++id)
    if (jobs[id].unmet == 0) {
      ready.push_back(id);
      ready_depth.add(1);
    }

  if (config_.jobs <= 1) {
    while (!ready.empty()) {
      if (interrupted()) {
        // Queued jobs are dropped, not run: the interrupt is the run-wide
        // cancel signal and the partial report must return promptly.
        ready_depth.add(-static_cast<std::int64_t>(ready.size()));
        ready.clear();
        break;
      }
      const std::size_t id = ready.front();
      ready.pop_front();
      ready_depth.add(-1);
      execute(id);
      for (const std::size_t dependent : jobs[id].dependents)
        if (--jobs[dependent].unmet == 0) {
          ready.push_back(dependent);
          ready_depth.add(1);
        }
    }
  } else {
    // Event-driven: every job is one *finite* pool task that, when done,
    // releases its dependents and submits newly ready jobs (at most
    // config_.jobs in flight). Finite tasks are essential — a pool waiter
    // helping via try_run_one may execute another job task nested on its
    // own stack, which is harmless exactly because job tasks always run to
    // completion instead of looping until the whole graph is done.
    std::size_t running = 0;
    bool aborted = false;
    std::exception_ptr first_error;
    TaskGroup group(ThreadPool::shared());
    std::function<void(std::size_t)> run_job;
    const auto pump = [&] {
      // Caller holds sched_mutex (this also serializes group.run calls).
      if (interrupted()) {
        ready_depth.add(-static_cast<std::int64_t>(ready.size()));
        ready.clear();
        return;
      }
      while (running < config_.jobs && !ready.empty()) {
        const std::size_t id = ready.front();
        ready.pop_front();
        ready_depth.add(-1);
        ++running;
        group.run([&run_job, id] { run_job(id); });
      }
    };
    run_job = [&](std::size_t id) {
      try {
        execute(id);
      } catch (...) {
        std::lock_guard<std::mutex> lock(sched_mutex);
        if (!first_error) first_error = std::current_exception();
        aborted = true;
        --running;
        return;
      }
      std::lock_guard<std::mutex> lock(sched_mutex);
      --running;
      for (const std::size_t dependent : jobs[id].dependents)
        if (--jobs[dependent].unmet == 0) {
          ready.push_back(dependent);
          ready_depth.add(1);
        }
      if (!aborted) pump();
    };
    {
      std::lock_guard<std::mutex> lock(sched_mutex);
      pump();
    }
    group.wait();
    if (first_error) std::rethrow_exception(first_error);
  }

  if (interrupted()) {
    report.interrupted = true;
    for (const Job& job : jobs) {
      if (job.done) continue;
      ++report.jobs_cancelled;
      if (job.kind != JobKind::analyze)
        report.results[job.target].cancelled = true;
    }
  }

  report.cache = stats_delta(cache_.stats(), stats_before);
  report.total_seconds = total_watch.elapsed_seconds();
  return report;
}

}  // namespace patchecko
