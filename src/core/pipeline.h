// The PATCHECKO pipeline (Figure 1): deep-learning candidate detection,
// execution validation, dynamic similarity ranking, and patch-presence
// analysis over a stripped target library.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cve_database.h"
#include "dl/similarity_model.h"
#include "obs/decision.h"
#include "retrieval/index.h"

namespace patchecko {

struct PipelineConfig {
  /// DL similarity cut for candidates. Slightly below 0.5 so a true match
  /// behind a small patch still enters the (dynamically pruned) candidate
  /// set; the dynamic stage eliminates the extra false positives.
  float detection_threshold = 0.4f;
  double minkowski_p = 3.0;  ///< Eq. (1) order
  /// The differential stage examines this many top-ranked candidates and
  /// picks the one nearest to either reference profile.
  std::size_t patch_candidates = 3;
  /// Worker threads for Stage 2 (candidate validation + profiling). The
  /// paper parallelizes environment execution and lists per-candidate
  /// parallelism as future work; this implements both. 1 = sequential.
  unsigned worker_threads = 1;
  MachineConfig machine;

  /// Stage-1 retrieval prefilter (src/retrieval): when not `off`, the DL
  /// model scores only the index's top-K shortlist per query instead of
  /// every target function. `verify` additionally scores everything and
  /// records shortlist-vs-exact recall. Part of the result-cache key.
  retrieval::PrefilterMode prefilter_mode = retrieval::PrefilterMode::off;
  /// Shortlist size per (CVE, query-direction).
  std::size_t prefilter_top_k = 32;
  /// Targets with fewer functions than this take the exact path even when
  /// the prefilter is on — index overhead only pays off past this size.
  std::size_t prefilter_min_total = 96;
};

/// A target library with its static features precomputed (shared across all
/// CVE queries against the same library).
struct AnalyzedLibrary {
  const LibraryBinary* binary = nullptr;
  std::vector<StaticFeatureVector> features;
  /// Retrieval index over `features`, present when the prefilter is in use
  /// (see ensure_retrieval_index). Shared so cached analyses and in-flight
  /// scans can hold the same immutable index.
  std::shared_ptr<const retrieval::FunctionIndex> index;
};

/// Extracts the 48 static features of every function, optionally across
/// worker threads. `build_retrieval_index` also builds the prefilter index
/// over the extracted features.
AnalyzedLibrary analyze_library(const LibraryBinary& library,
                                unsigned worker_threads = 1,
                                bool build_retrieval_index = false);

/// Builds `analyzed.index` if absent (no-op otherwise). Deterministic for a
/// given feature set; records retrieval.* build metrics.
void ensure_retrieval_index(AnalyzedLibrary& analyzed);

/// Everything Tables VI/VII report for one (CVE, query-version, target).
struct DetectionOutcome {
  std::string cve_id;
  bool query_is_patched = false;

  // Stage 1: deep-learning classification over all target functions.
  std::size_t total = 0;
  int true_positives = 0;
  int true_negatives = 0;
  int false_positives = 0;
  int false_negatives = 0;
  std::vector<std::size_t> candidates;
  double dl_seconds = 0.0;

  // Stage-1 prefilter (src/retrieval). `prefilter_mode` is the mode that was
  // *applied*: it reads `off` when the configured prefilter fell back to the
  // exact path (small target / missing index), with `prefilter_exact_fallback`
  // recording that the fallback fired. The recall pair is only populated in
  // verify mode: recall = recalled / exact_candidates (1.0 when the exact
  // scan found no candidates).
  retrieval::PrefilterMode prefilter_mode = retrieval::PrefilterMode::off;
  bool prefilter_exact_fallback = false;
  std::size_t prefilter_shortlist = 0;        ///< shortlist size scored
  std::size_t prefilter_exact_candidates = 0; ///< verify: exact candidate count
  std::size_t prefilter_recalled = 0;         ///< verify: of those, shortlisted

  // Stage 2: execution validation + dynamic similarity ranking.
  std::size_t executed = 0;  ///< candidates surviving input validation
  std::vector<RankedCandidate> ranking;
  int rank_of_target = -1;   ///< 1-based; -1 when the target was missed
  double da_seconds = 0.0;

  /// Decision provenance: why each Stage-1 candidate was kept or pruned.
  /// Always filled (it is deterministic and costs one pass over data the
  /// stages computed anyway) and round-trips through the result cache, so
  /// cold and warm scans produce bitwise-identical records.
  obs::StageRecord provenance;

  /// The cooperative cancel flag fired mid-detect (watchdog hard deadline):
  /// the outcome covers only the work finished before cancellation. Never
  /// serialized — the engine refuses to cache cancelled outcomes.
  bool cancelled = false;

  double false_positive_rate() const {
    const int negatives = true_negatives + false_positives;
    return negatives == 0 ? 0.0
                          : static_cast<double>(false_positives) /
                                static_cast<double>(negatives);
  }
};

/// Result of the differential stage plus the target it was applied to.
struct PatchReport {
  std::string cve_id;
  std::optional<std::size_t> matched_function;  ///< top-ranked candidate
  std::optional<PatchDecision> decision;        ///< absent if nothing matched
  /// Differential-pool provenance: every pooled candidate scored against
  /// both reference profiles, with the chosen one flagged. Recomputed
  /// deterministically each run (patch jobs are never cached).
  std::vector<obs::PatchCandidateRecord> pool;
};

class Patchecko {
 public:
  Patchecko(const SimilarityModel* model, PipelineConfig config = {});

  /// Stages 1+2 for one CVE against an analyzed target library.
  /// `query_is_patched` selects which reference drives the search
  /// (Table VI = vulnerable, Table VII = patched). `cancel`, when given, is
  /// the watchdog's cooperative stop flag: both stages poll it and abandon
  /// remaining work once it reads true (outcome.cancelled records that).
  /// `query_code`, when given, is the precomputed quantized form of the
  /// query's features (the corpus snapshot caches one per entry/direction);
  /// when absent the prefilter quantizes on the fly.
  DetectionOutcome detect(const CveEntry& entry,
                          const AnalyzedLibrary& target,
                          bool query_is_patched,
                          const std::atomic<bool>* cancel = nullptr,
                          const retrieval::QuantizedVector* query_code =
                              nullptr) const;

  /// Differential stage on one matched target function.
  PatchDecision analyze_patch(const CveEntry& entry,
                              const AnalyzedLibrary& target,
                              std::size_t target_function) const;

  /// Full workflow: detect with the vulnerable query, take the top-ranked
  /// candidate, and decide patch presence.
  PatchReport full_report(const CveEntry& entry,
                          const AnalyzedLibrary& target) const;

  /// Differential stage given already-computed detection outcomes for both
  /// query directions — the batch engine's patch jobs consume the (possibly
  /// cache-served) outcomes of its detect jobs through this entry point.
  PatchReport report_from(const CveEntry& entry, const AnalyzedLibrary& target,
                          const DetectionOutcome& from_vulnerable,
                          const DetectionOutcome& from_patched,
                          const std::atomic<bool>* cancel = nullptr) const;

  const PipelineConfig& config() const { return config_; }

 private:
  const SimilarityModel* model_;
  PipelineConfig config_;
};

}  // namespace patchecko
