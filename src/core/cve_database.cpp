#include "core/cve_database.h"

#include <algorithm>
#include <stdexcept>

#include "compiler/compiler.h"
#include "util/timer.h"

namespace patchecko {

CveEntry build_cve_entry(const EvalCorpus& corpus, const HostedCve& cve,
                         const LibraryBinary& reference,
                         const DatabaseConfig& config, Rng fuzz_rng) {
  const std::size_t lib = cve.library_index;
  CveEntry entry;
  entry.spec = cve.spec;
  entry.library_index = lib;
  entry.slot = cve.slot;
  entry.target_uid = corpus.target_uid(cve);

  entry.vulnerable_binary = reference.functions[cve.slot];
  entry.vulnerable_features =
      extract_static_features(entry.vulnerable_binary);
  entry.vulnerable_signature = make_signature(entry.vulnerable_binary);

  // Compile the patched reference in the same library context.
  SourceLibrary patched_source = corpus.vulnerable_source(lib);
  patched_source.functions[cve.slot] = cve.pair.patched;
  entry.patched_binary = compile_function(
      patched_source, cve.slot, corpus.config().db_arch,
      corpus.config().db_opt,
      entry.vulnerable_binary.source_uid - cve.slot);
  entry.patched_features = extract_static_features(entry.patched_binary);
  entry.patched_signature = make_signature(entry.patched_binary);

  // Fuzz environments on the vulnerable reference...
  std::vector<CallEnv> envs =
      generate_environments(reference, cve.slot, fuzz_rng, config.fuzz);

  // ...and keep those the patched version also survives.
  LibraryBinary patched_reference = reference;
  patched_reference.functions[cve.slot] = entry.patched_binary;
  const Machine patched_machine(patched_reference, config.fuzz.machine);
  std::vector<CallEnv> kept;
  for (CallEnv& env : envs) {
    if (patched_machine.run(cve.slot, env).status == ExecStatus::ok)
      kept.push_back(std::move(env));
  }
  if (!kept.empty()) envs = std::move(kept);
  entry.environments = std::move(envs);

  const Machine vulnerable_machine(reference, config.fuzz.machine);
  entry.vulnerable_profile =
      profile_function(vulnerable_machine, cve.slot, entry.environments);
  entry.patched_profile =
      profile_function(patched_machine, cve.slot, entry.environments);

  // On-device (architecture-matched) references. CVE pair functions are
  // self-contained (no intra-library calls by construction), so a
  // single-function library with the host's string pool suffices.
  for (Arch arch : config.ref_arches) {
    ArchRefs refs;
    for (const bool patched : {false, true}) {
      SourceLibrary mini;
      mini.name = cve.spec.cve_id + (patched ? "_p" : "_v");
      mini.strings = corpus.vulnerable_source(lib).strings;
      mini.functions.push_back(patched ? cve.pair.patched
                                       : cve.pair.vulnerable);
      LibraryBinary mini_binary = compile_library(mini, arch, config.ref_opt);
      const Machine mini_machine(mini_binary, config.fuzz.machine);
      const StaticFeatureVector features =
          extract_static_features(mini_binary.functions[0]);
      const DiffSignature signature = make_signature(mini_binary.functions[0]);
      const DynamicProfile profile =
          profile_function(mini_machine, 0, entry.environments);
      if (patched) {
        refs.patched_features = features;
        refs.patched_signature = signature;
        refs.patched_profile = profile;
      } else {
        refs.vulnerable_features = features;
        refs.vulnerable_signature = signature;
        refs.vulnerable_profile = profile;
      }
    }
    entry.arch_refs.emplace(arch, std::move(refs));
  }
  return entry;
}

CveDatabase::CveDatabase(const EvalCorpus& corpus,
                         const DatabaseConfig& config) {
  Rng rng(config.seed);

  // Group hosted CVEs by library so each reference library compiles once.
  for (std::size_t lib = 0; lib < corpus.library_specs().size(); ++lib) {
    std::vector<const HostedCve*> in_library;
    for (const HostedCve& cve : corpus.hosted_cves())
      if (cve.library_index == lib) in_library.push_back(&cve);
    if (in_library.empty()) continue;

    // Reference build with the vulnerable versions in place.
    LibraryBinary reference = corpus.compile_reference(lib);

    for (const HostedCve* cve : in_library)
      entries_.push_back(build_cve_entry(corpus, *cve, reference, config,
                                         rng.fork(0xF022 + entries_.size())));
  }
}

const CveEntry& CveDatabase::by_id(const std::string& cve_id) const {
  for (const CveEntry& entry : entries_)
    if (entry.spec.cve_id == cve_id) return entry;
  throw std::out_of_range("CveDatabase: unknown CVE " + cve_id);
}

retrieval::QueryCatalog build_query_catalog(const CveDatabase& database) {
  const Stopwatch watch;
  retrieval::QueryCatalog catalog;
  catalog.entries.reserve(database.entries().size());
  for (const CveEntry& entry : database.entries())
    catalog.entries.push_back({entry.spec.cve_id,
                               retrieval::quantize(entry.vulnerable_features),
                               retrieval::quantize(entry.patched_features)});
  std::sort(catalog.entries.begin(), catalog.entries.end(),
            [](const retrieval::QueryCatalog::Entry& a,
               const retrieval::QueryCatalog::Entry& b) {
              return a.cve_id < b.cve_id;
            });
  catalog.build_seconds = watch.elapsed_seconds();
  return catalog;
}

}  // namespace patchecko
