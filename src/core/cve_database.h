// The vulnerability database (paper Dataset II).
//
// For every CVE the database stores what the paper's offline stage produces:
// the vulnerable and patched reference function binaries (compiled at the
// analysis host's settings, Clang -O0 in the paper), their 48 static
// features, their differential signatures, the K fuzz-selected execution
// environments, and the dynamic profiles of both references under those
// environments. Everything the online pipeline needs — no source access at
// analysis time.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "diff/differential.h"
#include "features/static_features.h"
#include "firmware/firmware.h"
#include "fuzz/fuzzer.h"
#include "retrieval/query_catalog.h"
#include "similarity/similarity.h"
#include "util/rng.h"

namespace patchecko {

/// Architecture-matched reference data. The paper injects the CVE reference
/// binary into the *device* and executes it there, so the dynamic reference
/// traces come from a build of the reference for the device's architecture;
/// the database therefore carries one reference set per supported arch.
struct ArchRefs {
  StaticFeatureVector vulnerable_features{};
  StaticFeatureVector patched_features{};
  DiffSignature vulnerable_signature;
  DiffSignature patched_signature;
  DynamicProfile vulnerable_profile;
  DynamicProfile patched_profile;
};

struct CveEntry {
  CveSpec spec;
  std::size_t library_index = 0;
  std::size_t slot = 0;
  std::uint64_t target_uid = 0;  ///< evaluation-only ground truth

  // Cross-platform reference build (db_arch/db_opt): Stage 1 matches these
  // static features against targets of *any* architecture.
  FunctionBinary vulnerable_binary;
  FunctionBinary patched_binary;
  StaticFeatureVector vulnerable_features{};
  StaticFeatureVector patched_features{};
  DiffSignature vulnerable_signature;
  DiffSignature patched_signature;

  std::vector<CallEnv> environments;  ///< K fixed execution environments
  // Dynamic profiles of the db-arch references (ablation baseline).
  DynamicProfile vulnerable_profile;
  DynamicProfile patched_profile;

  /// Per-architecture references used by Stage 2 and the differential
  /// engine when the target's architecture is known (the on-device case).
  std::map<Arch, ArchRefs> arch_refs;

  const ArchRefs* refs_for(Arch arch) const {
    const auto it = arch_refs.find(arch);
    return it == arch_refs.end() ? nullptr : &it->second;
  }
};

struct DatabaseConfig {
  FuzzConfig fuzz;
  std::uint64_t seed = 0xCafe01;
  /// Optimization level of the per-arch on-device reference builds.
  OptLevel ref_opt = OptLevel::O2;
  /// Architectures to prepare on-device references for.
  std::vector<Arch> ref_arches{Arch::x86, Arch::amd64, Arch::arm32,
                               Arch::arm64};
};

/// Builds one database entry for a hosted CVE: compiles the patched
/// reference in the host-library context, fuzzes/validates the K execution
/// environments, profiles both references, and prepares the per-arch
/// on-device reference sets. `fuzz_rng` must be the caller's
/// `rng.fork(0xF022 + entry_index)` stream so an entry built in isolation
/// (the prebuilt-corpus store populating missing keys) is bit-identical to
/// one built by a full CveDatabase pass.
CveEntry build_cve_entry(const EvalCorpus& corpus, const HostedCve& cve,
                         const LibraryBinary& reference,
                         const DatabaseConfig& config, Rng fuzz_rng);

/// Builds entries for every CVE hosted in the corpus. One reference library
/// per evaluation library is compiled at database settings; environments are
/// fuzzed on the vulnerable reference and kept only if the patched reference
/// also executes them successfully (the paper validated its LibFuzzer inputs
/// against both versions).
class CveDatabase {
 public:
  CveDatabase(const EvalCorpus& corpus, const DatabaseConfig& config);

  /// Adopts prebuilt entries (the corpus-store warm path). Entries must be
  /// in the cold build order: libraries ascending, hosted CVEs within each
  /// library in corpus order.
  explicit CveDatabase(std::vector<CveEntry> entries)
      : entries_(std::move(entries)) {}

  const std::vector<CveEntry>& entries() const { return entries_; }
  const CveEntry& by_id(const std::string& cve_id) const;

 private:
  std::vector<CveEntry> entries_;
};

/// Quantizes both query directions of every entry for the retrieval
/// prefilter. A corpus snapshot builds this once and reuses it across every
/// scan it serves (detect() quantizes on the fly when no catalog is passed).
retrieval::QueryCatalog build_query_catalog(const CveDatabase& database);

}  // namespace patchecko
