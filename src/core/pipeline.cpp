#include "core/pipeline.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace patchecko {

namespace {

/// Stage counters and latency histograms behind `--metrics`. The stage
/// stopwatches the pipeline keeps anyway (dl_seconds/da_seconds) feed the
/// histograms, so enabling metrics adds no extra clock reads per stage.
struct PipelineMetrics {
  obs::Counter& functions_analyzed =
      obs::Registry::global().counter("pipeline.functions_analyzed");
  obs::Counter& candidates_stage1 =
      obs::Registry::global().counter("pipeline.candidates_stage1");
  obs::Counter& candidates_executed =
      obs::Registry::global().counter("pipeline.candidates_executed");
  obs::Counter& candidates_pruned =
      obs::Registry::global().counter("pipeline.candidates_pruned");
  obs::Histogram& analyze_seconds =
      obs::Registry::global().histogram("pipeline.analyze_seconds");
  obs::Histogram& dl_seconds =
      obs::Registry::global().histogram("pipeline.dl_seconds");
  obs::Histogram& da_seconds =
      obs::Registry::global().histogram("pipeline.da_seconds");
  obs::Histogram& patch_seconds =
      obs::Registry::global().histogram("pipeline.patch_seconds");

  // Stage-1 retrieval prefilter (src/retrieval). `prefilter_recall` is only
  // recorded in verify mode: its mean (sum/count) is the measured
  // shortlist-vs-exact recall across detect calls.
  obs::Counter& prefilter_shortlisted =
      obs::Registry::global().counter("pipeline.prefilter_shortlisted");
  obs::Counter& prefilter_pruned =
      obs::Registry::global().counter("pipeline.prefilter_pruned");
  obs::Counter& prefilter_exact_fallbacks =
      obs::Registry::global().counter("pipeline.prefilter_exact_fallbacks");
  obs::Counter& prefilter_exact_candidates =
      obs::Registry::global().counter("pipeline.prefilter_exact_candidates");
  obs::Counter& prefilter_recalled =
      obs::Registry::global().counter("pipeline.prefilter_recalled");
  obs::Histogram& prefilter_recall =
      obs::Registry::global().histogram("pipeline.prefilter_recall");
  obs::Counter& index_builds =
      obs::Registry::global().counter("retrieval.index_builds");
  obs::Counter& index_vectors =
      obs::Registry::global().counter("retrieval.index_vectors");
  obs::Histogram& index_build_seconds =
      obs::Registry::global().histogram("retrieval.index_build_seconds");

  static PipelineMetrics& get() {
    static PipelineMetrics metrics;
    return metrics;
  }
};

inline bool is_cancelled(const std::atomic<bool>* cancel) {
  return cancel != nullptr && cancel->load(std::memory_order_relaxed);
}

}  // namespace

AnalyzedLibrary analyze_library(const LibraryBinary& library,
                                unsigned worker_threads,
                                bool build_retrieval_index) {
  const obs::ScopedSpan span("pipeline.analyze");
  const Stopwatch watch;
  AnalyzedLibrary analyzed;
  analyzed.binary = &library;
  analyzed.features.resize(library.functions.size());
  parallel_for(library.functions.size(), worker_threads, [&](std::size_t i) {
    analyzed.features[i] = extract_static_features(library.functions[i]);
  });
  PipelineMetrics::get().functions_analyzed.add(library.functions.size());
  PipelineMetrics::get().analyze_seconds.record(watch.elapsed_seconds());
  if (build_retrieval_index) ensure_retrieval_index(analyzed);
  return analyzed;
}

void ensure_retrieval_index(AnalyzedLibrary& analyzed) {
  if (analyzed.index != nullptr) return;
  const obs::ScopedSpan span("retrieval.index_build");
  analyzed.index = retrieval::FunctionIndex::build_shared(analyzed.features);
  PipelineMetrics& metrics = PipelineMetrics::get();
  metrics.index_builds.add(1);
  metrics.index_vectors.add(analyzed.features.size());
  metrics.index_build_seconds.record(analyzed.index->stats().build_seconds);
}

Patchecko::Patchecko(const SimilarityModel* model, PipelineConfig config)
    : model_(model), config_(config) {}

DetectionOutcome Patchecko::detect(const CveEntry& entry,
                                   const AnalyzedLibrary& target,
                                   bool query_is_patched,
                                   const std::atomic<bool>* cancel,
                                   const retrieval::QuantizedVector* query_code)
    const {
  DetectionOutcome outcome;
  outcome.cve_id = entry.spec.cve_id;
  outcome.query_is_patched = query_is_patched;
  outcome.total = target.features.size();

  // Stage 1 matches the cross-platform (db-arch) reference features; Stage 2
  // compares against the reference profile collected on the target's own
  // architecture (the paper runs the injected reference binary on-device).
  const StaticFeatureVector& query_features =
      query_is_patched ? entry.patched_features : entry.vulnerable_features;
  const ArchRefs* refs = entry.refs_for(target.binary->arch);
  const DynamicProfile& query_profile =
      refs != nullptr
          ? (query_is_patched ? refs->patched_profile
                              : refs->vulnerable_profile)
          : (query_is_patched ? entry.patched_profile
                              : entry.vulnerable_profile);

  // --- Stage 1 prefilter ----------------------------------------------------
  // Shortlist the target functions nearest to the query in quantized feature
  // space (index.h) so the model scores K pairs instead of all of them.
  // Small targets, a zero K, or a missing index fall back to the exact path.
  retrieval::PrefilterMode prefilter = config_.prefilter_mode;
  if (prefilter != retrieval::PrefilterMode::off &&
      (config_.prefilter_top_k == 0 || target.index == nullptr ||
       target.features.size() < config_.prefilter_min_total)) {
    outcome.prefilter_exact_fallback = true;
    prefilter = retrieval::PrefilterMode::off;
  }
  outcome.prefilter_mode = prefilter;
  std::vector<std::uint32_t> shortlist;
  if (prefilter != retrieval::PrefilterMode::off) {
    const obs::ScopedSpan prefilter_span("pipeline.detect.prefilter");
    shortlist = target.index->top_k(
        query_code != nullptr ? *query_code : retrieval::quantize(query_features),
        config_.prefilter_top_k);
    outcome.prefilter_shortlist = shortlist.size();
  }

  // --- Stage 1: deep-learning classification --------------------------------
  // `on` scores only shortlisted functions; everything else is classified
  // negative unscored. `verify` scores every function (measuring what the
  // exact scan would have accepted) but classifies through the shortlist
  // exactly like `on`, so both modes produce identical outcomes.
  Stopwatch dl_watch;
  std::vector<float> candidate_scores;
  std::vector<std::pair<std::size_t, float>> verify_pruned;  // exact-only hits
  {
    const obs::ScopedSpan dl_span("pipeline.detect.dl");
    std::size_t shortlist_pos = 0;
    for (std::size_t i = 0; i < target.features.size(); ++i) {
      if (is_cancelled(cancel)) {
        outcome.cancelled = true;
        break;
      }
      bool shortlisted = true;
      if (prefilter != retrieval::PrefilterMode::off) {
        shortlisted = shortlist_pos < shortlist.size() &&
                      shortlist[shortlist_pos] == i;
        if (shortlisted) ++shortlist_pos;
      }
      const bool is_target =
          target.binary->functions[i].source_uid == entry.target_uid;
      if (prefilter == retrieval::PrefilterMode::on && !shortlisted) {
        // Pruned before the model ran; a true match here is the prefilter's
        // recall loss and lands in false_negatives like any stage-1 miss.
        if (is_target)
          ++outcome.false_negatives;
        else
          ++outcome.true_negatives;
        continue;
      }
      const float score = model_->score(query_features, target.features[i]);
      const bool accepted = score >= config_.detection_threshold;
      if (prefilter == retrieval::PrefilterMode::verify && accepted) {
        ++outcome.prefilter_exact_candidates;
        if (shortlisted)
          ++outcome.prefilter_recalled;
        else
          verify_pruned.emplace_back(i, score);
      }
      if (accepted && shortlisted) {
        outcome.candidates.push_back(i);
        candidate_scores.push_back(score);
        if (is_target)
          ++outcome.true_positives;
        else
          ++outcome.false_positives;
      } else {
        if (is_target)
          ++outcome.false_negatives;
        else
          ++outcome.true_negatives;
      }
    }
  }
  outcome.dl_seconds = dl_watch.elapsed_seconds();

  // --- Stage 2: execution validation + dynamic ranking ----------------------
  // Candidates validate and profile independently, so this fans out over
  // worker threads (Machine::run is stateless per call).
  Stopwatch da_watch;
  const Machine machine(*target.binary, config_.machine);
  std::vector<CandidateProfile> profiles;
  std::vector<std::optional<CandidateProfile>> slots(
      outcome.candidates.size());
  std::vector<std::int64_t> crash_envs(outcome.candidates.size(), -1);
  {
    const obs::ScopedSpan exec_span("pipeline.detect.exec");
    parallel_for(outcome.candidates.size(), config_.worker_threads,
                 [&](std::size_t c) {
                   // Cooperative cancellation: already-claimed candidates
                   // drain as no-ops so parallel_for still joins cleanly.
                   if (is_cancelled(cancel)) return;
                   const std::size_t index = outcome.candidates[c];
                   std::size_t crash_env = 0;
                   if (!validate_candidate(machine, index, entry.environments,
                                           &crash_env)) {
                     crash_envs[c] = static_cast<std::int64_t>(crash_env);
                     return;
                   }
                   slots[c] = CandidateProfile{
                       index,
                       profile_function(machine, index, entry.environments),
                       candidate_scores[c]};
                 });
    profiles.reserve(slots.size());
    for (const auto& slot : slots)
      if (slot.has_value()) profiles.push_back(*slot);
  }
  outcome.executed = profiles.size();
  {
    const obs::ScopedSpan rank_span("pipeline.detect.rank");
    outcome.ranking =
        rank_by_similarity(query_profile, profiles, config_.minkowski_p);
    for (std::size_t r = 0; r < outcome.ranking.size(); ++r) {
      const std::size_t index = outcome.ranking[r].function_index;
      if (target.binary->functions[index].source_uid == entry.target_uid) {
        outcome.rank_of_target = static_cast<int>(r) + 1;
        break;
      }
    }
  }
  outcome.da_seconds = da_watch.elapsed_seconds();
  if (is_cancelled(cancel)) outcome.cancelled = true;

  // --- decision provenance ---------------------------------------------------
  outcome.provenance.threshold = config_.detection_threshold;
  outcome.provenance.minkowski_p = config_.minkowski_p;
  outcome.provenance.total = outcome.total;
  outcome.provenance.executed = outcome.executed;
  outcome.provenance.prefilter = static_cast<std::uint8_t>(prefilter);
  outcome.provenance.prefilter_shortlist = outcome.prefilter_shortlist;
  outcome.provenance.prefilter_exact = outcome.prefilter_exact_candidates;
  outcome.provenance.prefilter_recalled = outcome.prefilter_recalled;
  outcome.provenance.candidates.reserve(outcome.candidates.size() +
                                        verify_pruned.size());
  // Merge scored candidates with verify-mode prefilter-pruned hits, ascending
  // by function index (both inputs are already ascending).
  std::size_t pruned_pos = 0;
  for (std::size_t c = 0; c < outcome.candidates.size(); ++c) {
    while (pruned_pos < verify_pruned.size() &&
           verify_pruned[pruned_pos].first < outcome.candidates[c]) {
      obs::CandidateRecord pruned;
      pruned.function_index = verify_pruned[pruned_pos].first;
      pruned.dl_score = verify_pruned[pruned_pos].second;
      pruned.prefiltered = true;
      outcome.provenance.candidates.push_back(std::move(pruned));
      ++pruned_pos;
    }
    obs::CandidateRecord record;
    record.function_index = outcome.candidates[c];
    record.dl_score = candidate_scores[c];
    record.validated = slots[c].has_value();
    record.crash_env = crash_envs[c];
    if (record.validated) {
      record.env_distances = per_env_distances(
          query_profile, slots[c]->profile, config_.minkowski_p);
      for (std::size_t r = 0; r < outcome.ranking.size(); ++r) {
        if (outcome.ranking[r].function_index == outcome.candidates[c]) {
          record.distance = outcome.ranking[r].distance;
          record.rank = static_cast<std::int64_t>(r) + 1;
          break;
        }
      }
    }
    outcome.provenance.candidates.push_back(std::move(record));
  }
  for (; pruned_pos < verify_pruned.size(); ++pruned_pos) {
    obs::CandidateRecord pruned;
    pruned.function_index = verify_pruned[pruned_pos].first;
    pruned.dl_score = verify_pruned[pruned_pos].second;
    pruned.prefiltered = true;
    outcome.provenance.candidates.push_back(std::move(pruned));
  }
  if (obs::events_enabled()) {
    obs::EventLog::global().emit(
        obs::Severity::info, "pipeline.stage1",
        {obs::Field::text("cve", entry.spec.cve_id),
         obs::Field::text("query", query_is_patched ? "patched" : "vulnerable"),
         obs::Field::u64("total", outcome.total),
         obs::Field::u64("candidates", outcome.candidates.size())});
    for (const obs::CandidateRecord& record : outcome.provenance.candidates)
      if (!record.validated)
        obs::EventLog::global().emit(
            obs::Severity::debug, "pipeline.candidate_pruned",
            {obs::Field::text("cve", entry.spec.cve_id),
             obs::Field::u64("function", record.function_index),
             obs::Field::i64("crash_env", record.crash_env)});
    obs::EventLog::global().emit(
        obs::Severity::info, "pipeline.ranked",
        {obs::Field::text("cve", entry.spec.cve_id),
         obs::Field::text("query", query_is_patched ? "patched" : "vulnerable"),
         obs::Field::u64("executed", outcome.executed),
         obs::Field::i64("rank_of_target", outcome.rank_of_target)});
  }

  PipelineMetrics& metrics = PipelineMetrics::get();
  metrics.candidates_stage1.add(outcome.candidates.size());
  metrics.candidates_executed.add(outcome.executed);
  metrics.candidates_pruned.add(outcome.candidates.size() - outcome.executed);
  metrics.dl_seconds.record(outcome.dl_seconds);
  metrics.da_seconds.record(outcome.da_seconds);
  if (outcome.prefilter_exact_fallback) metrics.prefilter_exact_fallbacks.add(1);
  if (prefilter != retrieval::PrefilterMode::off) {
    metrics.prefilter_shortlisted.add(outcome.prefilter_shortlist);
    metrics.prefilter_pruned.add(outcome.total - outcome.prefilter_shortlist);
    if (prefilter == retrieval::PrefilterMode::verify) {
      metrics.prefilter_exact_candidates.add(outcome.prefilter_exact_candidates);
      metrics.prefilter_recalled.add(outcome.prefilter_recalled);
      metrics.prefilter_recall.record(
          outcome.prefilter_exact_candidates == 0
              ? 1.0
              : static_cast<double>(outcome.prefilter_recalled) /
                    static_cast<double>(outcome.prefilter_exact_candidates));
    }
  }
  return outcome;
}

PatchDecision Patchecko::analyze_patch(const CveEntry& entry,
                                       const AnalyzedLibrary& target,
                                       std::size_t target_function) const {
  const FunctionBinary& fn = target.binary->functions[target_function];
  const StaticFeatureVector target_features = target.features[target_function];
  const DiffSignature target_signature = make_signature(fn);

  const Machine machine(*target.binary, config_.machine);
  const DynamicProfile target_profile =
      profile_function(machine, target_function, entry.environments);

  // Prefer the architecture-matched references: comparing an ARM target to
  // x86 references would drown patch-sized deltas in codegen noise.
  const ArchRefs* refs = entry.refs_for(target.binary->arch);
  const StaticFeatureVector& ref_vuln_features =
      refs != nullptr ? refs->vulnerable_features : entry.vulnerable_features;
  const StaticFeatureVector& ref_patch_features =
      refs != nullptr ? refs->patched_features : entry.patched_features;
  const DiffSignature& ref_vuln_signature =
      refs != nullptr ? refs->vulnerable_signature
                      : entry.vulnerable_signature;
  const DiffSignature& ref_patch_signature =
      refs != nullptr ? refs->patched_signature : entry.patched_signature;
  const DynamicProfile& ref_vuln_profile =
      refs != nullptr ? refs->vulnerable_profile : entry.vulnerable_profile;
  const DynamicProfile& ref_patch_profile =
      refs != nullptr ? refs->patched_profile : entry.patched_profile;

  const double dist_vulnerable = profile_distance(
      ref_vuln_profile, target_profile, config_.minkowski_p);
  const double dist_patched = profile_distance(
      ref_patch_profile, target_profile, config_.minkowski_p);

  return detect_patch(ref_vuln_features, ref_patch_features, target_features,
                      ref_vuln_signature, ref_patch_signature,
                      target_signature, dist_vulnerable, dist_patched);
}

PatchReport Patchecko::full_report(const CveEntry& entry,
                                   const AnalyzedLibrary& target) const {
  // Section II-B: "PATCHECKO will ... restart the whole process based on the
  // patched version of the vulnerable function" — both references always
  // drive a search, because either one alone can miss (the vulnerable query
  // misses heavily-patched targets, the paper's CVE-2017-13209 case).
  const DetectionOutcome from_vulnerable =
      detect(entry, target, /*query_is_patched=*/false);
  const DetectionOutcome from_patched =
      detect(entry, target, /*query_is_patched=*/true);
  return report_from(entry, target, from_vulnerable, from_patched);
}

PatchReport Patchecko::report_from(const CveEntry& entry,
                                   const AnalyzedLibrary& target,
                                   const DetectionOutcome& from_vulnerable,
                                   const DetectionOutcome& from_patched,
                                   const std::atomic<bool>* cancel) const {
  const obs::ScopedSpan span("pipeline.patch");
  const Stopwatch watch;
  PatchReport report;
  report.cve_id = entry.spec.cve_id;

  // Pool the top candidates of both rankings; the differential subject is
  // the one nearest to *either* reference profile (a false positive is far
  // from both). No ground-truth knowledge is involved.
  std::vector<std::size_t> pool;
  for (const DetectionOutcome* outcome : {&from_vulnerable, &from_patched}) {
    const std::size_t considered =
        std::min(config_.patch_candidates, outcome->ranking.size());
    for (std::size_t r = 0; r < considered; ++r) {
      const std::size_t index = outcome->ranking[r].function_index;
      if (std::find(pool.begin(), pool.end(), index) == pool.end())
        pool.push_back(index);
    }
  }
  if (pool.empty()) {
    PipelineMetrics::get().patch_seconds.record(watch.elapsed_seconds());
    return report;
  }

  const Machine machine(*target.binary, config_.machine);
  const ArchRefs* refs = entry.refs_for(target.binary->arch);
  const DynamicProfile& ref_vuln_profile =
      refs != nullptr ? refs->vulnerable_profile : entry.vulnerable_profile;
  const DynamicProfile& ref_patch_profile =
      refs != nullptr ? refs->patched_profile : entry.patched_profile;
  std::size_t best = pool.front();
  std::size_t best_slot = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  std::size_t best_effects = 0;
  report.pool.reserve(pool.size());
  for (std::size_t index : pool) {
    if (is_cancelled(cancel)) break;
    const DynamicProfile profile =
        profile_function(machine, index, entry.environments);
    obs::PatchCandidateRecord member;
    member.function_index = index;
    member.distance_vulnerable =
        profile_distance(ref_vuln_profile, profile, config_.minkowski_p);
    member.distance_patched =
        profile_distance(ref_patch_profile, profile, config_.minkowski_p);
    member.effect_matches_vulnerable =
        effect_matches(ref_vuln_profile, profile);
    member.effect_matches_patched = effect_matches(ref_patch_profile, profile);
    const double distance =
        std::min(member.distance_vulnerable, member.distance_patched);
    // Trace-distance ties (count-identical lookalikes) break on memory-
    // effect agreement with either reference: only the true match computes
    // the same values, not just the same instruction counts.
    const std::size_t effects =
        std::max<std::size_t>(member.effect_matches_vulnerable,
                              member.effect_matches_patched);
    if (distance < best_distance ||
        (distance == best_distance && effects > best_effects)) {
      best_distance = distance;
      best_effects = effects;
      best = index;
      best_slot = report.pool.size();
    }
    report.pool.push_back(member);
  }
  if (report.pool.empty()) {
    // Cancelled before any pool member was profiled; no verdict to render.
    PipelineMetrics::get().patch_seconds.record(watch.elapsed_seconds());
    return report;
  }
  report.pool[best_slot].chosen = true;
  report.matched_function = best;
  report.decision = analyze_patch(entry, target, best);
  if (obs::events_enabled()) {
    const PatchDecision& decision = *report.decision;
    obs::EventLog::global().emit(
        obs::Severity::info, "pipeline.patch_verdict",
        {obs::Field::text("cve", entry.spec.cve_id),
         obs::Field::u64("function", best),
         obs::Field::text("verdict", decision.verdict == PatchVerdict::patched
                                         ? "patched"
                                         : "vulnerable"),
         obs::Field::f64("votes_vulnerable", decision.votes_vulnerable),
         obs::Field::f64("votes_patched", decision.votes_patched)});
  }
  PipelineMetrics::get().patch_seconds.record(watch.elapsed_seconds());
  return report;
}

}  // namespace patchecko
