// Small numeric helpers shared by the feature extractors and the similarity
// engine: summary statistics over feature samples and the Minkowski distance
// family used by the paper's Eq. (1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace patchecko {

/// min / max / mean / standard deviation of a sample, computed in one pass.
/// An empty sample yields all-zero summary (the extractors rely on this for
/// functions with no basic blocks of a given kind).
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double sum = 0.0;
};

Summary summarize(std::span<const double> values);

/// Minkowski distance of order p between two equally sized vectors (paper
/// Eq. 1; p=3 in PATCHECKO, p=2 Euclidean, p=1 Manhattan).
double minkowski_distance(std::span<const double> x, std::span<const double> y,
                          double p);

/// Cosine similarity in [-1, 1]; 0 when either vector is all-zero.
double cosine_similarity(std::span<const double> x, std::span<const double> y);

/// Natural log of (1 + |v|) with the sign preserved; compresses the heavy
/// tail of count-valued features before normalization.
double signed_log1p(double v);

/// Mean of a vector (0 for empty input).
double mean_of(std::span<const double> values);

}  // namespace patchecko
