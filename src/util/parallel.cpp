#include "util/parallel.h"

#include <thread>

#include "engine/thread_pool.h"

namespace patchecko {

namespace detail {

void parallel_run(std::size_t n, unsigned worker_count,
                  const std::function<void(std::size_t)>& fn) {
  // Logical workers are submitted in index order; TaskGroup::wait rethrows
  // the pending exception with the lowest submission index, which makes the
  // surfaced error the lowest *worker* index by construction.
  TaskGroup group(ThreadPool::shared());
  for (unsigned w = 0; w < worker_count; ++w) {
    group.run([w, n, worker_count, &fn] {
      // Strided assignment keeps neighbouring (often similarly sized)
      // work items spread across workers.
      for (std::size_t i = w; i < n; i += worker_count) fn(i);
    });
  }
  group.wait();
}

}  // namespace detail

unsigned default_worker_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace patchecko
