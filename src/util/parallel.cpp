#include "util/parallel.h"

namespace patchecko {

unsigned default_worker_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace patchecko
