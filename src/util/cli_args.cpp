#include "util/cli_args.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace patchecko::cli {

long Args::get_long(const std::string& key, long fallback) const {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE)
    throw UsageError("--" + key + " expects an integer, got '" + it->second +
                     "'");
  return value;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE)
    throw UsageError("--" + key + " expects a number, got '" + it->second +
                     "'");
  return value;
}

long Args::get_count(const std::string& key, long fallback) const {
  const long value = get_long(key, fallback);
  if (value <= 0)
    throw UsageError("--" + key + " must be >= 1, got " +
                     std::to_string(value));
  return value;
}

Args parse_args(const std::vector<std::string>& argv) {
  Args args;
  if (!argv.empty()) args.command = argv[0];
  for (std::size_t i = 1; i < argv.size(); ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0)
      throw UsageError("unexpected argument '" + key + "'");
    key = key.substr(2);
    if (key.empty()) throw UsageError("empty option name '--'");
    // `--key=value` binds in one token; an empty value (`--key=`) is kept
    // distinct from the value-less `--key` only in that both store "".
    if (const auto eq = key.find('='); eq != std::string::npos) {
      args.options[key.substr(0, eq)] = key.substr(eq + 1);
      if (key.substr(0, eq).empty())
        throw UsageError("empty option name '--='");
      continue;
    }
    // Value-less options (e.g. --no-cache) are stored as empty strings; a
    // following token starting with "--" begins the next option.
    if (i + 1 < argv.size() && argv[i + 1].rfind("--", 0) != 0)
      args.options[key] = argv[++i];
    else
      args.options[key] = "";
  }
  return args;
}

Args parse_args(int argc, char** argv) {
  std::vector<std::string> tokens;
  tokens.reserve(argc > 1 ? static_cast<std::size_t>(argc - 1) : 0);
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return parse_args(tokens);
}

void require_known_options(const Args& args,
                           std::initializer_list<const char*> known) {
  for (const auto& [key, value] : args.options) {
    bool ok = false;
    for (const char* candidate : known) ok = ok || key == candidate;
    if (!ok)
      throw UsageError("unknown option '--" + key + "' for " + args.command);
  }
}

OutputSpec output_spec_from(const Args& args, const std::string& key,
                            bool value_required) {
  OutputSpec spec;
  if (!args.has(key)) return spec;
  spec.enabled = true;
  spec.file = args.get(key, "");
  // "-something" is almost certainly a mistyped flag, not an output path;
  // reject it now, before the scan runs for minutes and then fails to save.
  if (!spec.file.empty() && spec.file.front() == '-')
    throw UsageError("--" + key + " expects an output file path, got '" +
                     spec.file + "'" +
                     (value_required ? "" : " (use bare --" + key +
                                               " for stdout)"));
  if (value_required && spec.file.empty())
    throw UsageError("--" + key + " requires an output file path (--" + key +
                     "=FILE)");
  return spec;
}

MetricsSpec metrics_spec_from(const Args& args) {
  return output_spec_from(args, "metrics");
}

HeartbeatSpec heartbeat_spec_from(const Args& args, const std::string& key) {
  HeartbeatSpec spec;
  if (!args.has(key)) return spec;
  spec.enabled = true;
  std::string value = args.get(key, "");
  if (const auto colon = value.rfind(':'); colon != std::string::npos) {
    const std::string interval = value.substr(colon + 1);
    value = value.substr(0, colon);
    errno = 0;
    char* end = nullptr;
    const long ms = std::strtol(interval.c_str(), &end, 10);
    if (end == interval.c_str() || *end != '\0' || errno == ERANGE)
      throw UsageError("--" + key +
                       " interval expects an integer millisecond count, "
                       "got '" + interval + "'");
    if (ms <= 0)
      throw UsageError("--" + key + " interval must be >= 1 ms, got " +
                       std::to_string(ms));
    spec.interval_seconds = static_cast<double>(ms) / 1000.0;
  }
  spec.file = value;
  if (!spec.file.empty() && spec.file.front() == '-')
    throw UsageError("--" + key + " expects an output file path, got '" +
                     spec.file + "' (use bare --" + key + " for stderr)");
  return spec;
}

long checked_hz(const std::string& what, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long hz = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE)
    throw UsageError(what + " expects an integer Hz rate, got '" + text +
                     "'");
  if (hz < 1 || hz > 10000)
    throw UsageError(what + " must be in [1, 10000] Hz, got " +
                     std::to_string(hz));
  return hz;
}

ProfileSpec profile_spec_from(const Args& args, const std::string& key) {
  ProfileSpec spec;
  if (!args.has(key)) return spec;
  spec.enabled = true;
  std::string value = args.get(key, "");
  if (const auto colon = value.rfind(':'); colon != std::string::npos) {
    spec.hz = static_cast<double>(
        checked_hz("--" + key + " rate", value.substr(colon + 1)));
    value = value.substr(0, colon);
  }
  spec.file = value;
  if (!spec.file.empty() && spec.file.front() == '-')
    throw UsageError("--" + key + " expects an output file path, got '" +
                     spec.file + "' (use bare --" + key +
                     " for the top table only)");
  return spec;
}

std::string indexed_output_file(const std::string& file, std::uint64_t index) {
  const std::string tag = ".req" + std::to_string(index);
  // The extension starts at the last '.' inside the basename; a dot in a
  // parent directory ("out.d/ev") must not split the path.
  const auto slash = file.find_last_of('/');
  const auto dot = file.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash) || dot == 0 ||
      (slash != std::string::npos && dot == slash + 1))
    return file + tag;
  return file.substr(0, dot) + tag + file.substr(dot);
}

}  // namespace patchecko::cli
