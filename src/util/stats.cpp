#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace patchecko {

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    s.sum += v;
  }
  s.mean = s.sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    var += d * d;
  }
  var /= static_cast<double>(values.size());
  s.stddev = std::sqrt(var);
  return s;
}

double minkowski_distance(std::span<const double> x, std::span<const double> y,
                          double p) {
  if (x.size() != y.size())
    throw std::invalid_argument("minkowski_distance: size mismatch");
  if (p <= 0.0) throw std::invalid_argument("minkowski_distance: p must be > 0");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    acc += std::pow(std::abs(x[i] - y[i]), p);
  return std::pow(acc, 1.0 / p);
}

double cosine_similarity(std::span<const double> x,
                         std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("cosine_similarity: size mismatch");
  double dot = 0.0, nx = 0.0, ny = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    dot += x[i] * y[i];
    nx += x[i] * x[i];
    ny += y[i] * y[i];
  }
  if (nx == 0.0 || ny == 0.0) return 0.0;
  return dot / (std::sqrt(nx) * std::sqrt(ny));
}

double signed_log1p(double v) {
  return v >= 0.0 ? std::log1p(v) : -std::log1p(-v);
}

double mean_of(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

}  // namespace patchecko
