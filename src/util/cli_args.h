// Command-line option parsing for the patchecko CLI.
//
// Extracted from tools/patchecko_cli.cpp so option semantics are unit-
// testable: every command validates its full option set (names *and*
// values) up front, before any expensive corpus/model work starts — a
// typo'd flag or malformed value must fail in milliseconds, not after a
// minute of database building.
//
// Syntax: `--key value`, `--key=value`, and value-less `--key` (a following
// token that starts with "--" begins the next option). Unknown options are
// rejected per command via require_known_options.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace patchecko::cli {

/// Bad command-line input; the CLI prints the message and exits with the
/// usage status.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::map<std::string, std::string> options;
  std::string command;

  bool has(const std::string& key) const {
    return options.find(key) != options.end();
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }

  /// Strict numeric parsing: "12x", "", overflow, and missing digits are
  /// errors instead of atol's silent 0/prefix fallback.
  long get_long(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// A strictly positive integer (thread/job counts, sizes).
  long get_count(const std::string& key, long fallback) const;
};

/// `argv` is the raw token list after the program name: the command first,
/// then options.
Args parse_args(const std::vector<std::string>& argv);
Args parse_args(int argc, char** argv);

/// Reject options a command does not understand; a typo'd flag must not
/// silently fall back to defaults.
void require_known_options(const Args& args,
                           std::initializer_list<const char*> known);

/// Parsed `--KEY[=FILE]` output option: absent = disabled; bare `--KEY` =
/// enabled, written to stdout; `--KEY=FILE` = enabled, written to FILE.
struct OutputSpec {
  bool enabled = false;
  std::string file;  ///< empty = stdout
};

/// `--metrics[=FILE]` keeps its historical name at call sites.
using MetricsSpec = OutputSpec;

/// Validates an output option up front (with the other option checks):
/// values that look like a flag ("-...") are rejected before any work runs.
/// With `value_required`, bare `--KEY` is also an error (e.g. --trace-out
/// has no sensible stdout mode — the Chrome trace would interleave with the
/// report).
OutputSpec output_spec_from(const Args& args, const std::string& key,
                            bool value_required = false);

/// Validates `--metrics[=FILE]`; equivalent to output_spec_from("metrics").
MetricsSpec metrics_spec_from(const Args& args);

/// Parsed `--heartbeat[=FILE][:interval_ms]` option. Accepted value forms:
/// bare `--heartbeat` (stderr, default interval), `FILE`, `FILE:MS`, and
/// `:MS` (stderr at MS). The interval splits at the *last* ':'; once a ':'
/// is present the suffix must be a strictly positive integer millisecond
/// count — 0, negative, and non-numeric values are usage errors.
struct HeartbeatSpec {
  bool enabled = false;
  std::string file;               ///< empty = stderr
  double interval_seconds = 1.0;  ///< default 1000ms
};

HeartbeatSpec heartbeat_spec_from(const Args& args,
                                  const std::string& key = "heartbeat");

/// Parsed `--profile[=FILE][:hz]` option. Accepted value forms mirror
/// HeartbeatSpec: bare `--profile` (top table only), `FILE` (folded stacks
/// to FILE), `FILE:HZ`, and `:HZ`. The rate splits at the *last* ':'; once
/// a ':' is present the suffix must be an integer in [1, 10000] Hz.
struct ProfileSpec {
  bool enabled = false;
  std::string file;   ///< folded-stack output path; empty = not written
  double hz = 97.0;   ///< sampler cadence (prime, avoids lockstep aliasing)
};

ProfileSpec profile_spec_from(const Args& args,
                              const std::string& key = "profile");

/// Shared bound check for sampling/polling rates given in Hz (profiler
/// captures, daemon `profile` requests): integers in [1, 10000] only.
long checked_hz(const std::string& what, const std::string& text);

/// Derives a per-request output path from an OutputSpec/HeartbeatSpec file:
/// ".req<index>" is inserted before the extension ("ev.jsonl", 7 ->
/// "ev.req7.jsonl"; extension-less "ev" -> "ev.req7"). The scan service
/// uses this so `--events`/`--heartbeat` keep the exact one-shot CLI syntax
/// (and validation) while each admitted request gets its own file.
std::string indexed_output_file(const std::string& file, std::uint64_t index);

}  // namespace patchecko::cli
