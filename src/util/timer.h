// Wall-clock stopwatch for the processing-time columns of Tables VI/VII.
#pragma once

#include <chrono>

namespace patchecko {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace patchecko
