// Minimal data-parallel helper.
//
// The paper runs candidate executions for all environments in parallel and
// names per-candidate parallelism as future work (Section V-E); the pipeline
// uses this helper to do exactly that. Work is chunked over logical workers
// and executed on the process-wide work-stealing pool (engine/thread_pool.h)
// instead of spawning fresh std::threads per call, so nested parallel loops
// and the batch engine's job scheduler share one set of OS threads.
#pragma once

#include <cstddef>
#include <functional>

namespace patchecko {

namespace detail {
/// Runs fn(i) for i in [0, n) striped across `worker_count` logical workers
/// on the shared pool. Rethrows the exception of the lowest-indexed logical
/// worker that failed.
void parallel_run(std::size_t n, unsigned worker_count,
                  const std::function<void(std::size_t)>& fn);
}  // namespace detail

/// Invokes fn(i) for every i in [0, n), distributed over `threads` logical
/// workers (<= 1 means inline execution). fn must be safe to call
/// concurrently for distinct i. If workers throw, exactly one exception is
/// rethrown on the calling thread after all workers finish: the one raised
/// by the lowest worker index, regardless of completion order — so the
/// surfaced error is deterministic for a deterministic fn.
template <typename Fn>
void parallel_for(std::size_t n, unsigned threads, Fn&& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const unsigned worker_count =
      n < threads ? static_cast<unsigned>(n) : threads;
  const std::function<void(std::size_t)> wrapped = std::ref(fn);
  detail::parallel_run(n, worker_count, wrapped);
}

/// Default worker count: the machine's concurrency, at least 1.
unsigned default_worker_threads();

}  // namespace patchecko
