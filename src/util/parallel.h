// Minimal data-parallel helper.
//
// The paper runs candidate executions for all environments in parallel and
// names per-candidate parallelism as future work (Section V-E); the pipeline
// uses this helper to do exactly that. Plain std::thread chunking — no
// work stealing needed for our embarrassingly parallel loops.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace patchecko {

/// Invokes fn(i) for every i in [0, n), distributed over `threads` OS
/// threads (<= 1 means inline execution). fn must be safe to call
/// concurrently for distinct i. The first exception thrown by any worker is
/// rethrown on the calling thread after all workers join.
template <typename Fn>
void parallel_for(std::size_t n, unsigned threads, Fn&& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const unsigned worker_count =
      static_cast<unsigned>(std::min<std::size_t>(threads, n));
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  std::vector<std::exception_ptr> errors(worker_count);
  for (unsigned w = 0; w < worker_count; ++w) {
    workers.emplace_back([&, w] {
      try {
        // Strided assignment keeps neighbouring (often similarly sized)
        // work items spread across workers.
        for (std::size_t i = w; i < n; i += worker_count) fn(i);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : errors)
    if (error) std::rethrow_exception(error);
}

/// Default worker count: the machine's concurrency, at least 1.
unsigned default_worker_threads();

}  // namespace patchecko
