// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component of the reproduction (corpus generation, dataset
// sampling, network initialization, fuzzing) derives its randomness from a
// Rng seeded explicitly by the caller, so each experiment is reproducible
// bit-for-bit from a single top-level seed.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace patchecko {

/// splitmix64: used to expand a single 64-bit seed into a full xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Small, fast, and good enough statistical quality
/// for workload synthesis; satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed0fDeadBeefULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p) { return uniform01() < p; }

  /// Approximately normal draw (sum of uniforms; adequate for init noise).
  double gaussian(double mean = 0.0, double stddev = 1.0) {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += uniform01();
    return mean + stddev * (acc - 6.0);
  }

  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_pick(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double draw = uniform01() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      draw -= weights[i];
      if (draw <= 0.0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  /// Pick a random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(uniform(
        0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Derive an independent child generator; used to give every generated
  /// artifact (library, function, input set) its own stable stream.
  Rng fork(std::uint64_t salt) {
    std::uint64_t mix = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng(mix);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace patchecko
