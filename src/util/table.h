// Plain-text table rendering used by the benchmark harnesses to print the
// paper's tables in a shape directly comparable with the published ones.
#pragma once

#include <string>
#include <vector>

namespace patchecko {

/// Accumulates rows of strings and renders a column-aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule; missing trailing cells render empty.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("12.34").
std::string fmt_double(double v, int precision = 2);

/// Percentage formatting ("12.34%").
std::string fmt_percent(double fraction, int precision = 2);

}  // namespace patchecko
