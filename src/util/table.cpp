#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace patchecko {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

}  // namespace patchecko
