#include "dl/network.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace patchecko {

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      w_(in_dim, out_dim),
      b_(out_dim, 0.f),
      gw_(in_dim, out_dim),
      gb_(out_dim, 0.f),
      mw_(in_dim, out_dim),
      vw_(in_dim, out_dim),
      mb_(out_dim, 0.f),
      vb_(out_dim, 0.f) {
  // He initialization (ReLU-friendly).
  const double scale = std::sqrt(2.0 / static_cast<double>(in_dim));
  for (float& w : w_.data)
    w = static_cast<float>(rng.gaussian(0.0, scale));
}

Matrix DenseLayer::forward(const Matrix& x) const {
  if (x.cols != in_dim_)
    throw std::invalid_argument("DenseLayer::forward: dimension mismatch");
  Matrix y(x.rows, out_dim_);
  for (std::size_t r = 0; r < x.rows; ++r) {
    const float* xin = &x.data[r * in_dim_];
    float* yout = &y.data[r * out_dim_];
    for (std::size_t o = 0; o < out_dim_; ++o) yout[o] = b_[o];
    for (std::size_t i = 0; i < in_dim_; ++i) {
      const float xi = xin[i];
      if (xi == 0.f) continue;
      const float* wrow = &w_.data[i * out_dim_];
      for (std::size_t o = 0; o < out_dim_; ++o) yout[o] += xi * wrow[o];
    }
  }
  return y;
}

Matrix DenseLayer::backward(const Matrix& x, const Matrix& grad_y) {
  Matrix grad_x(x.rows, in_dim_);
  for (std::size_t r = 0; r < x.rows; ++r) {
    const float* xin = &x.data[r * in_dim_];
    const float* gy = &grad_y.data[r * out_dim_];
    float* gx = &grad_x.data[r * in_dim_];
    for (std::size_t o = 0; o < out_dim_; ++o) gb_[o] += gy[o];
    for (std::size_t i = 0; i < in_dim_; ++i) {
      const float* wrow = &w_.data[i * out_dim_];
      float* gwrow = &gw_.data[i * out_dim_];
      float acc = 0.f;
      const float xi = xin[i];
      for (std::size_t o = 0; o < out_dim_; ++o) {
        acc += wrow[o] * gy[o];
        gwrow[o] += xi * gy[o];
      }
      gx[i] = acc;
    }
  }
  return grad_x;
}

void DenseLayer::adam_step(float lr, float beta1, float beta2, float eps,
                           int t) {
  const float bc1 = 1.f - std::pow(beta1, static_cast<float>(t));
  const float bc2 = 1.f - std::pow(beta2, static_cast<float>(t));
  for (std::size_t i = 0; i < w_.data.size(); ++i) {
    mw_.data[i] = beta1 * mw_.data[i] + (1.f - beta1) * gw_.data[i];
    vw_.data[i] =
        beta2 * vw_.data[i] + (1.f - beta2) * gw_.data[i] * gw_.data[i];
    w_.data[i] -=
        lr * (mw_.data[i] / bc1) / (std::sqrt(vw_.data[i] / bc2) + eps);
  }
  for (std::size_t i = 0; i < b_.size(); ++i) {
    mb_[i] = beta1 * mb_[i] + (1.f - beta1) * gb_[i];
    vb_[i] = beta2 * vb_[i] + (1.f - beta2) * gb_[i] * gb_[i];
    b_[i] -= lr * (mb_[i] / bc1) / (std::sqrt(vb_[i] / bc2) + eps);
  }
}

void DenseLayer::zero_grad() {
  std::fill(gw_.data.begin(), gw_.data.end(), 0.f);
  std::fill(gb_.begin(), gb_.end(), 0.f);
}

namespace {

void relu_inplace(Matrix& m) {
  for (float& v : m.data) v = v > 0.f ? v : 0.f;
}

float sigmoid(float v) { return 1.f / (1.f + std::exp(-v)); }

}  // namespace

Network::Network(const std::vector<std::size_t>& dims, std::uint64_t seed) {
  if (dims.size() < 2)
    throw std::invalid_argument("Network: need at least input and output");
  Rng rng(seed);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i)
    layers_.emplace_back(dims[i], dims[i + 1], rng);
}

Network Network::make_patchecko_model(std::uint64_t seed,
                                      std::size_t input_dim) {
  // 6 layers, input shape 96 (Section V-B).
  return Network({input_dim, 96, 64, 48, 32, 16, 1}, seed);
}

Matrix Network::forward_cached(const Matrix& x,
                               std::vector<Matrix>& activations) const {
  activations.clear();
  activations.push_back(x);
  Matrix current = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    current = layers_[l].forward(current);
    if (l + 1 < layers_.size()) {
      relu_inplace(current);
      activations.push_back(current);
    }
  }
  return current;  // pre-sigmoid logits
}

std::vector<float> Network::predict(const Matrix& x) const {
  std::vector<Matrix> scratch;
  const Matrix logits = forward_cached(x, scratch);
  std::vector<float> out(x.rows);
  for (std::size_t r = 0; r < x.rows; ++r) out[r] = sigmoid(logits.data[r]);
  return out;
}

float Network::predict_one(const std::vector<float>& x) const {
  Matrix m(1, x.size());
  m.data = x;
  return predict(m)[0];
}

EpochStats Network::train_epoch(const Matrix& x, const std::vector<float>& y,
                                const TrainConfig& config, Rng& rng) {
  const std::size_t n = x.rows;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  double total_loss = 0.0;
  std::size_t correct = 0;

  for (std::size_t begin = 0; begin < n; begin += config.batch_size) {
    const std::size_t batch = std::min(config.batch_size, n - begin);
    Matrix xb(batch, x.cols);
    std::vector<float> yb(batch);
    for (std::size_t r = 0; r < batch; ++r) {
      const std::size_t src = order[begin + r];
      std::copy_n(&x.data[src * x.cols], x.cols, &xb.data[r * x.cols]);
      yb[r] = y[src];
    }

    std::vector<Matrix> activations;
    const Matrix logits = forward_cached(xb, activations);

    // BCE-with-logits: dL/dlogit = sigmoid(logit) - label, averaged.
    Matrix grad(batch, 1);
    for (std::size_t r = 0; r < batch; ++r) {
      const float p = sigmoid(logits.data[r]);
      const float label = yb[r];
      const float pc = std::clamp(p, 1e-7f, 1.f - 1e-7f);
      total_loss += -(label * std::log(pc) + (1.f - label) * std::log(1.f - pc));
      if ((p >= 0.5f) == (label >= 0.5f)) ++correct;
      grad.data[r] = (p - label) / static_cast<float>(batch);
    }

    for (auto& layer : layers_) layer.zero_grad();
    Matrix g = grad;
    for (std::size_t l = layers_.size(); l-- > 0;) {
      g = layers_[l].backward(activations[l], g);
      if (l > 0) {
        // ReLU gradient gate on the cached post-activation values.
        const Matrix& act = activations[l];
        for (std::size_t i = 0; i < g.data.size(); ++i)
          if (act.data[i] <= 0.f) g.data[i] = 0.f;
      }
    }
    ++adam_t_;
    for (auto& layer : layers_)
      layer.adam_step(config.learning_rate, config.beta1, config.beta2,
                      config.epsilon, adam_t_);
  }

  EpochStats stats;
  stats.loss = total_loss / static_cast<double>(n);
  stats.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  return stats;
}

EpochStats Network::evaluate(const Matrix& x,
                             const std::vector<float>& y) const {
  const std::vector<float> preds = predict(x);
  EpochStats stats;
  double total_loss = 0.0;
  std::size_t correct = 0;
  for (std::size_t r = 0; r < preds.size(); ++r) {
    const float pc = std::clamp(preds[r], 1e-7f, 1.f - 1e-7f);
    total_loss +=
        -(y[r] * std::log(pc) + (1.f - y[r]) * std::log(1.f - pc));
    if ((preds[r] >= 0.5f) == (y[r] >= 0.5f)) ++correct;
  }
  stats.loss = preds.empty() ? 0.0
                             : total_loss / static_cast<double>(preds.size());
  stats.accuracy = preds.empty()
                       ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(preds.size());
  return stats;
}

double auc_score(const std::vector<float>& scores,
                 const std::vector<float>& labels) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  // Rank statistic with tie-averaged ranks.
  double pos_rank_sum = 0.0;
  std::size_t positives = 0, negatives = 0;
  std::size_t i = 0;
  double rank = 1.0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]])
      ++j;
    const double avg_rank = (rank + rank + static_cast<double>(j - i)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (labels[order[k]] >= 0.5f) {
        pos_rank_sum += avg_rank;
        ++positives;
      } else {
        ++negatives;
      }
    }
    rank += static_cast<double>(j - i + 1);
    i = j + 1;
  }
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = pos_rank_sum - static_cast<double>(positives) *
                                      (static_cast<double>(positives) + 1) /
                                      2.0;
  return u / (static_cast<double>(positives) *
              static_cast<double>(negatives));
}

double accuracy_score(const std::vector<float>& scores,
                      const std::vector<float>& labels, float threshold) {
  if (scores.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < scores.size(); ++i)
    if ((scores[i] >= threshold) == (labels[i] >= 0.5f)) ++correct;
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

}  // namespace patchecko
