#include "dl/dataset.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "compiler/compiler.h"
#include "source/generator.h"
#include "source/mutate.h"
#include "util/rng.h"

namespace patchecko {

std::vector<FunctionVariants> build_variant_corpus(
    const DatasetConfig& config) {
  Rng rng(config.seed);
  std::vector<FunctionVariants> corpus;
  corpus.reserve(config.library_count * config.functions_per_library);

  for (std::size_t lib_index = 0; lib_index < config.library_count;
       ++lib_index) {
    const std::uint64_t lib_seed = rng.fork(lib_index + 1)();
    const SourceLibrary source = generate_library(
        "trainlib_" + std::to_string(lib_index), lib_seed,
        config.functions_per_library);
    const std::uint64_t uid_base =
        (static_cast<std::uint64_t>(lib_index) + 1) << 20;

    const std::size_t first = corpus.size();
    for (std::size_t f = 0; f < source.functions.size(); ++f) {
      FunctionVariants fv;
      fv.uid = uid_base + f;
      corpus.push_back(std::move(fv));
    }

    Rng fail_rng = rng.fork(0x5eed + lib_index);
    for (Arch arch : all_arches) {
      for (OptLevel opt : all_opt_levels) {
        if (fail_rng.chance(config.build_failure_rate)) continue;  // "didn't build"
        const LibraryBinary binary =
            compile_library(source, arch, opt, uid_base);
        for (std::size_t f = 0; f < binary.functions.size(); ++f)
          corpus[first + f].variants.push_back(
              extract_static_features(binary.functions[f]));
      }
    }

    // Small-edit augmentation: a sample of functions also contributes
    // variants whose *source* received a one-line patch-shaped edit.
    for (std::size_t f = 0; f < source.functions.size(); ++f)
      corpus[first + f].first_mutated = corpus[first + f].variants.size();
    Rng mut_rng = rng.fork(0x307a7e + lib_index);
    static const PatchKind small_kinds[] = {
        PatchKind::off_by_one, PatchKind::constant_tweak,
        PatchKind::add_skip_condition, PatchKind::add_bounds_guard};
    for (std::size_t f = 0; f < source.functions.size(); ++f) {
      if (!mut_rng.chance(config.mutation_positive_fraction)) continue;
      const PatchKind kind =
          small_kinds[static_cast<std::size_t>(mut_rng.uniform(0, 3))];
      const auto mutated = apply_patch(source.functions[f], kind, mut_rng);
      if (!mutated) continue;
      SourceLibrary edited = source;
      edited.functions[f] = *mutated;
      for (int k = 0; k < 3; ++k) {
        const Arch arch = all_arches[static_cast<std::size_t>(
            mut_rng.uniform(0, 3))];
        const OptLevel opt = all_opt_levels[static_cast<std::size_t>(
            mut_rng.uniform(0, 5))];
        corpus[first + f].variants.push_back(extract_static_features(
            compile_function(edited, f, arch, opt, uid_base)));
      }
    }
  }
  return corpus;
}

namespace {

void append_pair(PairDataset& set, const FeatureNormalizer& normalizer,
                 const StaticFeatureVector& a, const StaticFeatureVector& b,
                 float label, std::vector<float>& flat) {
  const StaticFeatureVector na = normalizer.transform(a);
  const StaticFeatureVector nb = normalizer.transform(b);
  for (double v : na) flat.push_back(static_cast<float>(v));
  for (double v : nb) flat.push_back(static_cast<float>(v));
  set.y.push_back(label);
}

}  // namespace

DatasetBundle build_pair_dataset(const std::vector<FunctionVariants>& corpus,
                                 const DatasetConfig& config) {
  DatasetBundle bundle;
  Rng rng(config.seed ^ 0xda7a5e7);

  // Usable functions need at least two variants for a positive pair.
  std::vector<std::size_t> usable;
  for (std::size_t i = 0; i < corpus.size(); ++i)
    if (corpus[i].variants.size() >= 2) usable.push_back(i);
  std::shuffle(usable.begin(), usable.end(), rng);

  const auto n = usable.size();
  const auto train_end =
      static_cast<std::size_t>(static_cast<double>(n) * config.train_fraction);
  const auto val_end = train_end + static_cast<std::size_t>(
                                       static_cast<double>(n) *
                                       config.val_fraction);

  // Normalizer: fitted on training-split raw vectors only (no leakage).
  std::vector<StaticFeatureVector> train_vectors;
  for (std::size_t k = 0; k < train_end; ++k)
    for (const auto& v : corpus[usable[k]].variants)
      train_vectors.push_back(v);
  bundle.normalizer.fit(train_vectors);

  bundle.corpus_functions = corpus.size();
  for (const auto& fv : corpus) bundle.corpus_variants += fv.variants.size();

  struct SplitRange {
    std::size_t begin, end;
    PairDataset* set;
  };

  std::vector<float> train_flat, val_flat, test_flat;
  const SplitRange ranges[3] = {
      {0, train_end, &bundle.train},
      {train_end, val_end, &bundle.val},
      {val_end, n, &bundle.test},
  };
  std::vector<float>* flats[3] = {&train_flat, &val_flat, &test_flat};

  for (int s = 0; s < 3; ++s) {
    const SplitRange& range = ranges[s];
    std::vector<float>& flat = *flats[s];
    for (std::size_t k = range.begin; k < range.end; ++k) {
      const FunctionVariants& fn = corpus[usable[k]];
      const auto vcount = static_cast<std::int64_t>(fn.variants.size());
      for (std::size_t p = 0; p < config.positives_per_function; ++p) {
        // Positive: two distinct variants of the same function. Functions
        // with small-edit variants dedicate half their positives to
        // (pristine, edited) cross pairs — the patch-tolerance signal.
        std::size_t i, j;
        if (fn.has_mutated() && p % 2 == 1 && fn.first_mutated > 0) {
          i = static_cast<std::size_t>(rng.uniform(
              0, static_cast<std::int64_t>(fn.first_mutated) - 1));
          j = fn.first_mutated + static_cast<std::size_t>(rng.uniform(
              0, static_cast<std::int64_t>(fn.variants.size() -
                                           fn.first_mutated) - 1));
        } else {
          i = static_cast<std::size_t>(rng.uniform(0, vcount - 1));
          j = static_cast<std::size_t>(rng.uniform(0, vcount - 2));
          if (j >= i) ++j;
        }
        append_pair(*range.set, bundle.normalizer, fn.variants[i],
                    fn.variants[j], 1.f, flat);
        // Negative: a variant of a *different* function from the same split
        // (keeps splits leak-free).
        const std::size_t other_k = range.begin + static_cast<std::size_t>(
            rng.uniform(0,
                        static_cast<std::int64_t>(range.end - range.begin) -
                            1));
        if (usable[other_k] == usable[k]) {
          // Degenerate single-function split: skip the negative.
          continue;
        }
        const FunctionVariants& other = corpus[usable[other_k]];
        const auto oi = static_cast<std::size_t>(rng.uniform(
            0, static_cast<std::int64_t>(other.variants.size()) - 1));
        append_pair(*range.set, bundle.normalizer, fn.variants[i],
                    other.variants[oi], 0.f, flat);
      }
    }
    range.set->x.rows = range.set->y.size();
    range.set->x.cols = 2 * static_feature_count;
    range.set->x.data = std::move(flat);
  }

  return bundle;
}

}  // namespace patchecko
