#include "dl/trainer.h"

#include <cstdio>

namespace patchecko {

TrainingRun train_similarity_model(const TrainerConfig& config) {
  TrainingRun run;

  const auto corpus = build_variant_corpus(config.dataset);
  DatasetBundle bundle = build_pair_dataset(corpus, config.dataset);
  run.train_pairs = bundle.train.y.size();
  run.val_pairs = bundle.val.y.size();
  run.test_pairs = bundle.test.y.size();

  Network network = Network::make_patchecko_model(config.model_seed);
  Rng rng(config.model_seed ^ 0x7ea1);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const EpochStats train_stats =
        network.train_epoch(bundle.train.x, bundle.train.y, config.optimizer,
                            rng);
    const EpochStats val_stats = network.evaluate(bundle.val.x, bundle.val.y);
    run.train_history.push_back(train_stats);
    run.val_history.push_back(val_stats);
    if (config.verbose) {
      std::printf(
          "epoch %2zu  train_acc=%.4f train_loss=%.4f  val_acc=%.4f "
          "val_loss=%.4f\n",
          epoch + 1, train_stats.accuracy, train_stats.loss,
          val_stats.accuracy, val_stats.loss);
    }
  }

  const std::vector<float> test_scores = network.predict(bundle.test.x);
  run.test_accuracy = accuracy_score(test_scores, bundle.test.y);
  run.test_auc = auc_score(test_scores, bundle.test.y);
  run.model = SimilarityModel(std::move(network), bundle.normalizer);
  return run;
}

SimilarityModel load_or_train_model(const std::string& cache_path,
                                    const TrainerConfig& config) {
  if (auto cached = SimilarityModel::load(cache_path)) return *cached;
  TrainingRun run = train_similarity_model(config);
  (void)run.model.save(cache_path);  // best effort; training result is valid
  return std::move(run.model);
}

}  // namespace patchecko
