#include "dl/similarity_model.h"

#include <cstdint>
#include <fstream>

namespace patchecko {

std::vector<float> SimilarityModel::pair_input(
    const StaticFeatureVector& a, const StaticFeatureVector& b) const {
  const StaticFeatureVector na = normalizer_.transform(a);
  const StaticFeatureVector nb = normalizer_.transform(b);
  std::vector<float> input;
  input.reserve(2 * static_feature_count);
  for (double v : na) input.push_back(static_cast<float>(v));
  for (double v : nb) input.push_back(static_cast<float>(v));
  return input;
}

float SimilarityModel::score(const StaticFeatureVector& a,
                             const StaticFeatureVector& b) const {
  // The pair input is ordered; symmetrize so score(a,b) == score(b,a) and a
  // single lopsided prediction cannot drop a true match.
  const float forward = network_.predict_one(pair_input(a, b));
  const float backward = network_.predict_one(pair_input(b, a));
  return 0.5f * (forward + backward);
}

namespace {
constexpr std::uint32_t model_magic = 0x504b4d4c;  // "PKML"
}

bool SimilarityModel::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  auto put_u32 = [&](std::uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto put_f64 = [&](double v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_u32(model_magic);
  for (double v : normalizer_.means()) put_f64(v);
  for (double v : normalizer_.stddevs()) put_f64(v);
  put_u32(static_cast<std::uint32_t>(network_.layers().size()));
  for (const DenseLayer& layer : network_.layers()) {
    put_u32(static_cast<std::uint32_t>(layer.in_dim()));
    put_u32(static_cast<std::uint32_t>(layer.out_dim()));
    out.write(reinterpret_cast<const char*>(layer.weights().data()),
              static_cast<std::streamsize>(layer.weights().size() *
                                           sizeof(float)));
    out.write(reinterpret_cast<const char*>(layer.biases().data()),
              static_cast<std::streamsize>(layer.biases().size() *
                                           sizeof(float)));
  }
  return static_cast<bool>(out);
}

std::optional<SimilarityModel> SimilarityModel::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  auto get_u32 = [&]() {
    std::uint32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  auto get_f64 = [&]() {
    double v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  if (get_u32() != model_magic) return std::nullopt;
  StaticFeatureVector mean{}, stddev{};
  for (double& v : mean) v = get_f64();
  for (double& v : stddev) v = get_f64();
  FeatureNormalizer normalizer;
  normalizer.set_parameters(mean, stddev);

  const std::uint32_t layer_count = get_u32();
  if (!in || layer_count == 0 || layer_count > 64) return std::nullopt;
  std::vector<std::size_t> dims;
  std::vector<std::pair<std::vector<float>, std::vector<float>>> params;
  for (std::uint32_t l = 0; l < layer_count; ++l) {
    const std::uint32_t in_dim = get_u32();
    const std::uint32_t out_dim = get_u32();
    if (!in || in_dim == 0 || out_dim == 0 || in_dim > 4096 ||
        out_dim > 4096)
      return std::nullopt;
    if (l == 0) dims.push_back(in_dim);
    dims.push_back(out_dim);
    std::vector<float> weights(static_cast<std::size_t>(in_dim) * out_dim);
    std::vector<float> biases(out_dim);
    in.read(reinterpret_cast<char*>(weights.data()),
            static_cast<std::streamsize>(weights.size() * sizeof(float)));
    in.read(reinterpret_cast<char*>(biases.data()),
            static_cast<std::streamsize>(biases.size() * sizeof(float)));
    params.emplace_back(std::move(weights), std::move(biases));
  }
  if (!in) return std::nullopt;

  Network network(dims, /*seed=*/0);
  for (std::size_t l = 0; l < params.size(); ++l) {
    network.layers()[l].weights() = std::move(params[l].first);
    network.layers()[l].biases() = std::move(params[l].second);
  }
  return SimilarityModel(std::move(network), std::move(normalizer));
}

}  // namespace patchecko
