// End-to-end training driver for the similarity classifier (Figure 8).
#pragma once

#include <string>
#include <vector>

#include "dl/dataset.h"
#include "dl/similarity_model.h"

namespace patchecko {

struct TrainerConfig {
  DatasetConfig dataset;
  TrainConfig optimizer;
  std::size_t epochs = 12;
  std::uint64_t model_seed = 7;
  bool verbose = false;  ///< print per-epoch accuracy/loss (Figure 8 series)
};

struct TrainingRun {
  SimilarityModel model;
  std::vector<EpochStats> train_history;
  std::vector<EpochStats> val_history;
  double test_accuracy = 0.0;
  double test_auc = 0.0;
  std::size_t train_pairs = 0, val_pairs = 0, test_pairs = 0;
};

/// Builds Dataset I, trains the 6-layer model, reports test accuracy + AUC.
TrainingRun train_similarity_model(const TrainerConfig& config);

/// Loads a cached model from `cache_path` if present; otherwise trains with
/// `config` and saves to the cache. Deterministic given the config, so every
/// benchmark binary shares one model.
SimilarityModel load_or_train_model(const std::string& cache_path,
                                    const TrainerConfig& config);

}  // namespace patchecko
