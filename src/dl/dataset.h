// Dataset I: same-source / different-source function-pair dataset.
//
// The paper compiles 100 Android libraries for 4 architectures x 6
// optimization levels (2,108 binaries after build failures) and labels two
// binary functions similar iff they come from the same source function.
// This module reproduces that pipeline on the MiniC corpus: generate
// libraries, compile the full build matrix (with a realistic fraction of
// failing (arch,opt) combinations skipped), extract the 48 static features,
// and assemble train/validation/test pair sets split *by source function*
// so evaluation functions are unseen during training.
#pragma once

#include <cstdint>
#include <vector>

#include "dl/network.h"
#include "features/static_features.h"
#include "isa/isa.h"

namespace patchecko {

struct DatasetConfig {
  std::size_t library_count = 60;
  std::size_t functions_per_library = 24;
  /// Fraction of (library, arch, opt) combinations skipped, modelling the
  /// paper's "some compiler optimization levels didn't work".
  double build_failure_rate = 0.12;
  /// Positive pairs sampled per source function (negatives are matched 1:1).
  std::size_t positives_per_function = 4;
  /// Fraction of functions that additionally contribute *small-edit*
  /// variants (one-line patch shapes) compiled into the positive class.
  /// Real-world corpora contain exactly this noise — trivially-diverged
  /// builds of "the same" function — and it is what lets the paper's model
  /// match a vulnerable reference against its patched descendant (Table VI
  /// finds 9 of 10 patched targets). Large structural patches remain
  /// dissimilar, preserving the CVE-2017-13209 miss.
  double mutation_positive_fraction = 0.6;
  double train_fraction = 0.6;
  double val_fraction = 0.2;
  std::uint64_t seed = 20200612;  // DSN 2020 vintage
};

/// All compiled variants of one source function, as raw feature vectors.
/// Variants at index >= first_mutated come from small-edit augmented builds.
struct FunctionVariants {
  std::uint64_t uid = 0;
  std::vector<StaticFeatureVector> variants;
  std::size_t first_mutated = 0;  ///< == variants.size() when none

  bool has_mutated() const { return first_mutated < variants.size(); }
};

/// Generates + compiles the corpus and extracts features.
std::vector<FunctionVariants> build_variant_corpus(const DatasetConfig& config);

struct PairDataset {
  Matrix x;                  // N x 96 normalized pair inputs
  std::vector<float> y;      // 0/1 labels
};

struct DatasetBundle {
  PairDataset train;
  PairDataset val;
  PairDataset test;
  FeatureNormalizer normalizer;  // fitted on training-split vectors
  std::size_t corpus_functions = 0;
  std::size_t corpus_variants = 0;
};

/// Samples labelled pairs and splits them by source function.
DatasetBundle build_pair_dataset(const std::vector<FunctionVariants>& corpus,
                                 const DatasetConfig& config);

}  // namespace patchecko
