// From-scratch feed-forward neural network.
//
// The paper trains a 6-layer Keras/TensorFlow sequential model whose input
// is the 96-wide concatenation of two functions' 48 static features and
// whose output is the probability that the two functions come from the same
// source code (Figure 3/4). This module reimplements exactly that: dense
// layers with ReLU, a sigmoid head, binary cross-entropy loss, and Adam —
// CPU-only, deterministic from a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace patchecko {

/// Row-major dense matrix of float32 (training precision).
struct Matrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<float> data;

  Matrix() = default;
  Matrix(std::size_t r, std::size_t c) : rows(r), cols(c), data(r * c, 0.f) {}

  float& at(std::size_t r, std::size_t c) { return data[r * cols + c]; }
  float at(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
};

/// One fully connected layer with Adam state.
class DenseLayer {
 public:
  DenseLayer() = default;
  DenseLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }

  /// y = x W + b for a batch x (B x in).
  Matrix forward(const Matrix& x) const;

  /// Given dL/dy and the cached forward input, accumulates weight gradients
  /// and returns dL/dx.
  Matrix backward(const Matrix& x, const Matrix& grad_y);

  void adam_step(float lr, float beta1, float beta2, float eps, int t);
  void zero_grad();

  std::vector<float>& weights() { return w_.data; }
  const std::vector<float>& weights() const { return w_.data; }
  std::vector<float>& biases() { return b_; }
  const std::vector<float>& biases() const { return b_; }

 private:
  std::size_t in_dim_ = 0, out_dim_ = 0;
  Matrix w_;                  // in x out
  std::vector<float> b_;
  Matrix gw_;
  std::vector<float> gb_;
  Matrix mw_, vw_;            // Adam moments
  std::vector<float> mb_, vb_;
};

struct TrainConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  std::size_t batch_size = 64;
};

struct EpochStats {
  double loss = 0.0;
  double accuracy = 0.0;
};

/// The similarity classifier: Dense+ReLU stacks with a sigmoid head.
class Network {
 public:
  Network() = default;

  /// `dims` = {input, hidden..., 1}. The paper's shape is the default used
  /// by make_patchecko_model().
  Network(const std::vector<std::size_t>& dims, std::uint64_t seed);

  static Network make_patchecko_model(std::uint64_t seed,
                                      std::size_t input_dim = 96);

  /// Sigmoid outputs for a batch, one per row.
  std::vector<float> predict(const Matrix& x) const;

  /// Single-sample convenience.
  float predict_one(const std::vector<float>& x) const;

  /// One full pass over (x, y) in shuffled mini-batches; returns mean loss
  /// and accuracy. Labels are 0/1.
  EpochStats train_epoch(const Matrix& x, const std::vector<float>& y,
                         const TrainConfig& config, Rng& rng);

  /// Mean BCE loss + accuracy without updating weights.
  EpochStats evaluate(const Matrix& x, const std::vector<float>& y) const;

  const std::vector<DenseLayer>& layers() const { return layers_; }
  std::vector<DenseLayer>& layers() { return layers_; }

 private:
  Matrix forward_cached(const Matrix& x,
                        std::vector<Matrix>& activations) const;

  std::vector<DenseLayer> layers_;
  int adam_t_ = 0;
};

/// Area under the ROC curve via the rank statistic.
double auc_score(const std::vector<float>& scores,
                 const std::vector<float>& labels);

/// Classification accuracy at `threshold`.
double accuracy_score(const std::vector<float>& scores,
                      const std::vector<float>& labels,
                      float threshold = 0.5f);

}  // namespace patchecko
