// The trained similarity classifier bundled with its feature normalizer.
//
// score(a, b) is the probability that two binary functions come from the
// same source code (the paper's Stage-1 detector). The normalizer fitted on
// the training corpus travels with the network so inference applies the
// identical transform.
#pragma once

#include <optional>
#include <string>

#include "dl/network.h"
#include "features/static_features.h"

namespace patchecko {

class SimilarityModel {
 public:
  SimilarityModel() = default;
  SimilarityModel(Network network, FeatureNormalizer normalizer)
      : network_(std::move(network)), normalizer_(std::move(normalizer)) {}

  /// Probability in [0,1] that `a` and `b` are same-source. Raw (untrans-
  /// formed) feature vectors in.
  float score(const StaticFeatureVector& a,
              const StaticFeatureVector& b) const;

  /// Builds the normalized 96-wide pair input (exposed for batch scoring).
  std::vector<float> pair_input(const StaticFeatureVector& a,
                                const StaticFeatureVector& b) const;

  const Network& network() const { return network_; }
  Network& network() { return network_; }
  const FeatureNormalizer& normalizer() const { return normalizer_; }

  /// Binary serialization (weights + normalizer). Returns false on I/O error.
  bool save(const std::string& path) const;
  static std::optional<SimilarityModel> load(const std::string& path);

 private:
  Network network_;
  FeatureNormalizer normalizer_;
};

}  // namespace patchecko
