// AST -> VCode lowering (internal to the compiler).
#pragma once

#include "compiler/vcode.h"
#include "source/ast.h"

namespace patchecko {

/// Lowers `fn` to virtual-register code. Conditions compile to compare+branch
/// with short-circuit logical operators; for-loops evaluate their bound once;
/// switches lower to normalized modulo + jump table. A terminating `ret` is
/// always present.
VCode lower_function(const SourceFunction& fn);

/// AST-level full unrolling of constant-trip inner loops (trip count <=
/// `max_trip`). Applied before lowering at O3/Ofast.
void unroll_constant_loops(SourceFunction& fn, std::int64_t max_trip);

}  // namespace patchecko
