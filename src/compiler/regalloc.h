// Register allocation + final code emission (internal to the compiler).
//
// Linear-scan over conservatively extended live intervals. Three registers
// per architecture are reserved as scratch for spill traffic and x86
// two-operand fixups; O0 compiles with an empty allocatable pool, which
// reproduces the classic "-O0 keeps everything in the stack frame" shape.
//
// Calling convention (shared with the VM):
//   * up to 4 arguments are read by the callee from the caller's r0..r3 at
//     the call instant; the callee runs on a fresh register frame
//   * the return value arrives in the caller's r0; all other caller
//     registers are preserved across the call
//   * the emitter saves/restores r1..r3 around calls with pushes and passes
//     arguments through the stack (push all, pop into r(k-1)..r0), which is
//     shuffle-hazard free
#pragma once

#include "binary/binary.h"
#include "compiler/vcode.h"

namespace patchecko {

/// Assigns physical registers, expands prologue/calls, resolves labels and
/// jump tables, and produces executable code. `spill_all` selects the O0
/// everything-in-memory mode.
FunctionBinary allocate_and_emit(const VCode& code, Arch arch, OptLevel opt,
                                 bool spill_all);

}  // namespace patchecko
