#include "compiler/passes.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isa/runtime_scalar.h"
#include "util/rng.h"

namespace patchecko {

namespace {

// Removes insts[idx], transferring any bound labels to the next instruction.
// The trailing `ret` is never removable, so a successor always exists.
void remove_at(VCode& code, std::size_t idx) {
  auto& insts = code.insts;
  if (!insts[idx].labels.empty() && idx + 1 < insts.size()) {
    auto& next = insts[idx + 1].labels;
    next.insert(next.begin(), insts[idx].labels.begin(),
                insts[idx].labels.end());
  }
  insts.erase(insts.begin() + static_cast<std::ptrdiff_t>(idx));
}

struct DefInfo {
  int def_count = 0;
  std::size_t def_index = 0;
};

std::unordered_map<int, DefInfo> build_defs(const VCode& code) {
  std::unordered_map<int, DefInfo> defs;
  for (std::size_t i = 0; i < code.insts.size(); ++i) {
    const VInst& inst = code.insts[i];
    if (inst.dst >= 0) {
      auto& info = defs[inst.dst];
      ++info.def_count;
      info.def_index = i;
    }
  }
  // Parameters are defined by the prologue.
  for (int p : code.param_vregs) ++defs[p].def_count;
  return defs;
}

std::unordered_map<int, int> build_uses(const VCode& code) {
  std::unordered_map<int, int> uses;
  for (const VInst& inst : code.insts) {
    if (inst.a >= 0) ++uses[inst.a];
    if (inst.b >= 0) ++uses[inst.b];
    for (int arg : inst.call_args) ++uses[arg];
  }
  return uses;
}

// Map from vreg to its constant value, for vregs defined exactly once by ldi.
std::unordered_map<int, std::int64_t> constant_map(const VCode& code) {
  const auto defs = build_defs(code);
  std::unordered_map<int, std::int64_t> constants;
  for (const VInst& inst : code.insts) {
    if (inst.op != Opcode::ldi || inst.dst < 0) continue;
    const auto it = defs.find(inst.dst);
    if (it != defs.end() && it->second.def_count == 1)
      constants[inst.dst] = inst.imm;
  }
  return constants;
}

std::optional<std::int64_t> fold_int_op(Opcode op, std::int64_t a,
                                        std::int64_t b) {
  switch (op) {
    case Opcode::add: return rt::wrap_add(a, b);
    case Opcode::sub: return rt::wrap_sub(a, b);
    case Opcode::mul: return rt::wrap_mul(a, b);
    case Opcode::andi: return a & b;
    case Opcode::ori: return a | b;
    case Opcode::xori: return a ^ b;
    case Opcode::shl: return rt::wrap_shl(a, b);
    case Opcode::shr: return rt::wrap_shr(a, b);
    case Opcode::cmp: return a < b ? -1 : (a > b ? 1 : 0);
    case Opcode::divi:
      if (b == 0) return std::nullopt;
      if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return a;
      return a / b;
    case Opcode::modi:
      if (b == 0) return std::nullopt;
      if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
        return std::int64_t{0};
      return a % b;
    default:
      return std::nullopt;
  }
}

}  // namespace

void pass_constant_fold(VCode& code) {
  for (bool changed = true; changed;) {
    changed = false;
    const auto constants = constant_map(code);
    const auto defs = build_defs(code);
    for (VInst& inst : code.insts) {
      if (inst.dst < 0) continue;
      const auto dst_info = defs.find(inst.dst);
      if (dst_info == defs.end() || dst_info->second.def_count != 1)
        continue;

      auto const_of = [&](int vreg) -> std::optional<std::int64_t> {
        const auto it = constants.find(vreg);
        if (it == constants.end()) return std::nullopt;
        return it->second;
      };

      std::optional<std::int64_t> folded;
      if (inst.op == Opcode::mov) {
        folded = const_of(inst.a);
      } else if (inst.op == Opcode::neg) {
        if (const auto a = const_of(inst.a)) folded = rt::wrap_sub(0, *a);
      } else if (inst.op == Opcode::cvtif) {
        if (const auto a = const_of(inst.a))
          folded = std::bit_cast<std::int64_t>(static_cast<double>(*a));
      } else if (inst.op == Opcode::cmp && inst.imm != 0) {
        // fp compare: fold on the bit-cast doubles
        const auto a = const_of(inst.a);
        const auto b = const_of(inst.b);
        if (a && b) {
          const double fa = std::bit_cast<double>(*a);
          const double fb = std::bit_cast<double>(*b);
          folded = fa < fb ? -1 : (fa > fb ? 1 : 0);
        }
      } else if (inst.a >= 0 && inst.b >= 0) {
        const auto a = const_of(inst.a);
        const auto b = const_of(inst.b);
        if (a && b) {
          switch (inst.op) {
            case Opcode::fadd: case Opcode::fsub: case Opcode::fmul: {
              const double fa = std::bit_cast<double>(*a);
              const double fb = std::bit_cast<double>(*b);
              const double r = inst.op == Opcode::fadd   ? fa + fb
                               : inst.op == Opcode::fsub ? fa - fb
                                                         : fa * fb;
              folded = std::bit_cast<std::int64_t>(r);
              break;
            }
            case Opcode::fdiv: {
              const double fa = std::bit_cast<double>(*a);
              const double fb = std::bit_cast<double>(*b);
              folded = std::bit_cast<std::int64_t>(fb == 0.0 ? 0.0 : fa / fb);
              break;
            }
            default:
              folded = fold_int_op(inst.op, *a, *b);
              break;
          }
        }
      }

      if (folded) {
        inst.op = Opcode::ldi;
        inst.imm = *folded;
        inst.a = -1;
        inst.b = -1;
        inst.call_args.clear();
        changed = true;
      }
    }
    if (!changed) break;
  }
}

void pass_dead_code(VCode& code) {
  for (bool changed = true; changed;) {
    changed = false;
    const auto uses = build_uses(code);
    for (std::size_t i = code.insts.size(); i-- > 0;) {
      const VInst& inst = code.insts[i];
      if (!is_pure(inst) || inst.dst < 0) continue;
      const auto it = uses.find(inst.dst);
      if (it == uses.end() || it->second == 0) {
        remove_at(code, i);
        changed = true;
      }
    }
  }
}

void pass_copy_propagate(VCode& code) {
  std::unordered_map<int, int> copies;  // dst -> source vreg
  auto invalidate = [&](int vreg) {
    copies.erase(vreg);
    for (auto it = copies.begin(); it != copies.end();) {
      if (it->second == vreg)
        it = copies.erase(it);
      else
        ++it;
    }
  };
  auto resolve = [&](int vreg) {
    const auto it = copies.find(vreg);
    return it == copies.end() ? vreg : it->second;
  };

  for (VInst& inst : code.insts) {
    // A bound label starts a new basic block: kill all local knowledge.
    if (!inst.labels.empty()) copies.clear();

    if (inst.a >= 0) inst.a = resolve(inst.a);
    if (inst.b >= 0) inst.b = resolve(inst.b);
    for (int& arg : inst.call_args) arg = resolve(arg);

    if (inst.dst >= 0) invalidate(inst.dst);
    if (inst.op == Opcode::mov && inst.dst >= 0 && inst.a >= 0 &&
        inst.dst != inst.a)
      copies[inst.dst] = inst.a;

    if (is_control(inst)) copies.clear();
  }

  // Self-moves produced by propagation (mov x, x) are removed here rather
  // than at emission: a spilled self-move would otherwise still cost a
  // load+store on register-poor targets, perturbing cross-arch CFG shape.
  for (std::size_t i = code.insts.size(); i-- > 0;) {
    const VInst& inst = code.insts[i];
    if (inst.op == Opcode::mov && inst.dst == inst.a) remove_at(code, i);
  }
}

void pass_address_fold(VCode& code) {
  const auto constants = constant_map(code);
  const auto defs = build_defs(code);
  const auto uses = build_uses(code);

  for (VInst& add : code.insts) {
    if (add.op != Opcode::add || add.dst < 0) continue;
    // Normalize the constant operand to `b`.
    int base = add.a;
    int offset = add.b;
    if (constants.count(base) != 0 && constants.count(offset) == 0)
      std::swap(base, offset);
    const auto k = constants.find(offset);
    if (k == constants.end()) continue;
    const auto dst_info = defs.find(add.dst);
    const auto base_info = defs.find(base);
    if (dst_info == defs.end() || dst_info->second.def_count != 1) continue;
    if (base_info == defs.end() || base_info->second.def_count != 1) continue;

    // Every use of the address must be a zero-offset memory op's address.
    bool foldable = true;
    std::vector<VInst*> memory_ops;
    for (VInst& use : code.insts) {
      const bool uses_here = use.a == add.dst || use.b == add.dst ||
                             [&] {
                               for (int arg : use.call_args)
                                 if (arg == add.dst) return true;
                               return false;
                             }();
      if (!uses_here || &use == &add) continue;
      const bool is_mem = use.op == Opcode::load || use.op == Opcode::loadb ||
                          use.op == Opcode::store ||
                          use.op == Opcode::storeb;
      if (!is_mem || use.a != add.dst || use.imm != 0 ||
          use.b == add.dst) {
        foldable = false;
        break;
      }
      memory_ops.push_back(&use);
    }
    if (!foldable || memory_ops.empty()) continue;
    (void)uses;
    for (VInst* mem : memory_ops) {
      mem->a = base;
      mem->imm = k->second;
    }
    // The add becomes dead; DCE removes it (and the ldi).
  }
  pass_dead_code(code);
}

void pass_branch_thread(VCode& code) {
  // label id -> index of the instruction it binds to
  std::unordered_map<int, std::size_t> label_pos;
  auto rebuild = [&] {
    label_pos.clear();
    for (std::size_t i = 0; i < code.insts.size(); ++i)
      for (int l : code.insts[i].labels) label_pos.emplace(l, i);
  };
  rebuild();

  // Thread chains of unconditional jumps.
  for (VInst& inst : code.insts) {
    if (inst.label < 0) continue;
    std::unordered_set<int> visited;
    int label = inst.label;
    while (visited.insert(label).second) {
      const auto it = label_pos.find(label);
      if (it == label_pos.end()) break;
      const VInst& target = code.insts[it->second];
      if (target.op == Opcode::jmp && target.label >= 0)
        label = target.label;
      else
        break;
    }
    inst.label = label;
  }

  // Drop jumps to the immediately-following instruction.
  for (bool changed = true; changed;) {
    changed = false;
    rebuild();
    for (std::size_t i = 0; i < code.insts.size(); ++i) {
      const VInst& inst = code.insts[i];
      if (inst.op != Opcode::jmp || inst.label < 0) continue;
      const auto it = label_pos.find(inst.label);
      if (it != label_pos.end() && it->second == i + 1) {
        remove_at(code, i);
        changed = true;
        break;
      }
    }
  }
}

void pass_remove_unreachable(VCode& code) {
  // An instruction directly after an unconditional control transfer with no
  // label bound to it can never execute (e.g. the `jmp join` emitted after a
  // switch case whose body already returned).
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 1; i < code.insts.size(); ++i) {
      const VInst& prev = code.insts[i - 1];
      const bool prev_terminates = prev.op == Opcode::ret ||
                                   prev.op == Opcode::jmp ||
                                   prev.op == Opcode::jmpi;
      if (prev_terminates && code.insts[i].labels.empty()) {
        remove_at(code, i);
        changed = true;
        break;
      }
    }
  }
}

void pass_align_loops(VCode& code) {
  // Loop heads = label positions targeted by a backward branch. Insert nop
  // padding in front (classic fetch alignment), leaving the labels on the
  // head itself so only the fall-through path executes the padding.
  std::unordered_map<int, std::size_t> label_pos;
  for (std::size_t i = 0; i < code.insts.size(); ++i)
    for (int l : code.insts[i].labels) label_pos.emplace(l, i);

  std::unordered_set<std::size_t> heads;
  for (std::size_t i = 0; i < code.insts.size(); ++i) {
    const VInst& inst = code.insts[i];
    if (inst.label < 0) continue;
    const auto it = label_pos.find(inst.label);
    if (it != label_pos.end() && it->second <= i) heads.insert(it->second);
  }
  // Insert back-to-front so earlier indices stay valid.
  std::vector<std::size_t> sorted(heads.begin(), heads.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  for (std::size_t head : sorted) {
    VInst nop;
    nop.op = Opcode::nop;
    code.insts.insert(code.insts.begin() + static_cast<std::ptrdiff_t>(head),
                      nop);
    // The padding must execute before the labels: move the head's labels...
    // they are already on the original head, which shifted one slot right.
  }
}

void pass_schedule_shuffle(VCode& code, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i + 1 < code.insts.size(); ++i) {
    VInst& x = code.insts[i];
    VInst& y = code.insts[i + 1];
    if (!is_pure(x) || !is_pure(y)) continue;
    if (!x.labels.empty() || !y.labels.empty()) continue;
    const bool independent =
        x.dst != y.a && x.dst != y.b && x.dst != y.dst && y.dst != x.a &&
        y.dst != x.b;
    if (independent && rng.chance(0.5)) std::swap(x, y);
  }
}

void run_passes(VCode& code, Arch arch, OptLevel opt,
                std::uint64_t schedule_seed) {
  if (opt == OptLevel::O0) return;

  // O1 core pipeline.
  pass_constant_fold(code);
  pass_copy_propagate(code);
  pass_constant_fold(code);
  pass_dead_code(code);
  pass_remove_unreachable(code);
  if (opt == OptLevel::O1) return;

  // O2 / O3 / Oz / Ofast.
  pass_address_fold(code);
  pass_branch_thread(code);
  pass_dead_code(code);
  pass_remove_unreachable(code);

  const bool x86_family = arch == Arch::x86 || arch == Arch::amd64;
  const bool wants_alignment =
      x86_family && (opt == OptLevel::O2 || opt == OptLevel::O3 ||
                     opt == OptLevel::Ofast);
  if (wants_alignment) pass_align_loops(code);
  if (opt == OptLevel::Ofast) pass_schedule_shuffle(code, schedule_seed);
}

}  // namespace patchecko
