#include "compiler/lower.h"

#include <bit>
#include <stdexcept>

namespace patchecko {

bool is_pure(const VInst& inst) {
  switch (inst.op) {
    case Opcode::mov: case Opcode::ldi: case Opcode::ldstr:
    case Opcode::add: case Opcode::sub: case Opcode::mul:
    case Opcode::neg: case Opcode::andi: case Opcode::ori:
    case Opcode::xori: case Opcode::shl: case Opcode::shr:
    case Opcode::cmp:
    case Opcode::fadd: case Opcode::fsub: case Opcode::fmul:
    case Opcode::fneg: case Opcode::cvtif: case Opcode::cvtfi:
      return true;
    // divi/modi/fdiv and loads may trap; everything else has side effects.
    default:
      return false;
  }
}

bool is_control(const VInst& inst) {
  return is_branch(inst.op) || inst.op == Opcode::ret;
}

namespace {

class Lowerer {
 public:
  explicit Lowerer(const SourceFunction& fn) : fn_(fn) {
    for (std::size_t i = 0; i < fn.param_types.size(); ++i)
      code_.param_vregs.push_back(code_.new_vreg());
    for (std::size_t i = 0; i < fn.local_types.size(); ++i)
      local_vregs_.push_back(code_.new_vreg());
  }

  VCode run() {
    // Locals start zero-initialized (interpreter Frame semantics).
    for (int vreg : local_vregs_) emit_ldi(vreg, 0);
    for (const auto& stmt : fn_.body) lower_stmt(*stmt);
    // Unconditional epilogue: catches fall-off-the-end and binds any
    // pending labels (e.g. the join label of a trailing if).
    const int zero = code_.new_vreg();
    emit_ldi(zero, 0);
    VInst ret;
    ret.op = Opcode::ret;
    ret.a = zero;
    emit(std::move(ret));
    return std::move(code_);
  }

 private:
  // --- emission helpers ----------------------------------------------------

  void emit(VInst inst) {
    if (!pending_labels_.empty()) {
      inst.labels.insert(inst.labels.end(), pending_labels_.begin(),
                         pending_labels_.end());
      pending_labels_.clear();
    }
    code_.insts.push_back(std::move(inst));
  }

  void bind_label(int label) { pending_labels_.push_back(label); }

  void emit_ldi(int dst, std::int64_t imm) {
    VInst inst;
    inst.op = Opcode::ldi;
    inst.dst = dst;
    inst.imm = imm;
    emit(std::move(inst));
  }

  void emit3(Opcode op, int dst, int a, int b) {
    VInst inst;
    inst.op = op;
    inst.dst = dst;
    inst.a = a;
    inst.b = b;
    emit(std::move(inst));
  }

  void emit_mov(int dst, int src) {
    VInst inst;
    inst.op = Opcode::mov;
    inst.dst = dst;
    inst.a = src;
    emit(std::move(inst));
  }

  void emit_jmp(int label) {
    VInst inst;
    inst.op = Opcode::jmp;
    inst.label = label;
    emit(std::move(inst));
  }

  void emit_branch(Opcode op, int cond_vreg, int label) {
    VInst inst;
    inst.op = op;
    inst.a = cond_vreg;
    inst.label = label;
    emit(std::move(inst));
  }

  // --- expressions ----------------------------------------------------------

  int lower_expr(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::int_const: {
        const int v = code_.new_vreg();
        emit_ldi(v, expr.int_value);
        return v;
      }
      case Expr::Kind::fp_const: {
        const int v = code_.new_vreg();
        emit_ldi(v, std::bit_cast<std::int64_t>(expr.fp_value));
        return v;
      }
      case Expr::Kind::param_ref:
        return code_.param_vregs.at(
            static_cast<std::size_t>(expr.int_value));
      case Expr::Kind::local_ref:
        return local_vregs_.at(static_cast<std::size_t>(expr.int_value));
      case Expr::Kind::binop:
        return lower_binop(expr);
      case Expr::Kind::unop:
        return lower_unop(expr);
      case Expr::Kind::index_load: {
        const int addr = lower_address(*expr.args[0], *expr.args[1],
                                       expr.byte_access);
        const int v = code_.new_vreg();
        VInst inst;
        inst.op = expr.byte_access ? Opcode::loadb : Opcode::load;
        inst.dst = v;
        inst.a = addr;
        inst.imm = 0;
        emit(std::move(inst));
        return v;
      }
      case Expr::Kind::libcall: {
        std::vector<int> args;
        args.reserve(expr.args.size());
        for (const auto& arg : expr.args) args.push_back(lower_expr(*arg));
        const int v = code_.new_vreg();
        VInst inst;
        inst.op = Opcode::libcall;
        inst.dst = v;
        inst.imm = static_cast<std::int64_t>(expr.lib_fn);
        inst.call_args = std::move(args);
        emit(std::move(inst));
        return v;
      }
      case Expr::Kind::strref: {
        const int v = code_.new_vreg();
        VInst inst;
        inst.op = Opcode::ldstr;
        inst.dst = v;
        inst.imm = expr.int_value;
        emit(std::move(inst));
        return v;
      }
      case Expr::Kind::fn_call: {
        std::vector<int> args;
        args.reserve(expr.args.size());
        for (const auto& arg : expr.args) args.push_back(lower_expr(*arg));
        const int v = code_.new_vreg();
        VInst inst;
        inst.op = Opcode::call;
        inst.dst = v;
        inst.imm = expr.callee;
        inst.call_args = std::move(args);
        emit(std::move(inst));
        return v;
      }
      case Expr::Kind::ptr_offset: {
        const int base = lower_expr(*expr.args[0]);
        const int disp = lower_expr(*expr.args[1]);
        const int v = code_.new_vreg();
        emit3(Opcode::add, v, base, disp);
        return v;
      }
      case Expr::Kind::indirect_call: {
        // target = even + (selector & 1) * (odd - even), then callr.
        const int selector = lower_expr(*expr.args[0]);
        const int one = code_.new_vreg();
        emit_ldi(one, 1);
        const int bit = code_.new_vreg();
        emit3(Opcode::andi, bit, selector, one);
        const int delta = code_.new_vreg();
        emit_ldi(delta, expr.int_value - expr.callee);
        const int scaled = code_.new_vreg();
        emit3(Opcode::mul, scaled, bit, delta);
        const int base = code_.new_vreg();
        emit_ldi(base, expr.callee);
        const int target = code_.new_vreg();
        emit3(Opcode::add, target, scaled, base);

        std::vector<int> args;
        for (std::size_t a = 1; a < expr.args.size(); ++a)
          args.push_back(lower_expr(*expr.args[a]));
        const int v = code_.new_vreg();
        VInst inst;
        inst.op = Opcode::callr;
        inst.dst = v;
        inst.a = target;
        inst.call_args = std::move(args);
        emit(std::move(inst));
        return v;
      }
    }
    throw std::logic_error("lower_expr: unhandled expression kind");
  }

  /// base + index (byte) or base + index*8 (word).
  int lower_address(const Expr& base, const Expr& index, bool byte_access) {
    const int base_v = lower_expr(base);
    int index_v = lower_expr(index);
    if (!byte_access) {
      const int scaled = code_.new_vreg();
      const int three = code_.new_vreg();
      emit_ldi(three, 3);
      emit3(Opcode::shl, scaled, index_v, three);
      index_v = scaled;
    }
    const int addr = code_.new_vreg();
    emit3(Opcode::add, addr, base_v, index_v);
    return addr;
  }

  int lower_binop(const Expr& expr) {
    const BinOp op = expr.bin_op;
    if (op == BinOp::land || op == BinOp::lor || binop_is_comparison(op))
      return materialize_condition(expr);

    const int a = lower_expr(*expr.args[0]);
    const int b = lower_expr(*expr.args[1]);
    const int v = code_.new_vreg();
    Opcode machine_op;
    switch (op) {
      case BinOp::add: machine_op = Opcode::add; break;
      case BinOp::sub: machine_op = Opcode::sub; break;
      case BinOp::mul: machine_op = Opcode::mul; break;
      case BinOp::divi: machine_op = Opcode::divi; break;
      case BinOp::modi: machine_op = Opcode::modi; break;
      case BinOp::band: machine_op = Opcode::andi; break;
      case BinOp::bor: machine_op = Opcode::ori; break;
      case BinOp::bxor: machine_op = Opcode::xori; break;
      case BinOp::shl: machine_op = Opcode::shl; break;
      case BinOp::shr: machine_op = Opcode::shr; break;
      case BinOp::fadd: machine_op = Opcode::fadd; break;
      case BinOp::fsub: machine_op = Opcode::fsub; break;
      case BinOp::fmul: machine_op = Opcode::fmul; break;
      case BinOp::fdiv: machine_op = Opcode::fdiv; break;
      default:
        throw std::logic_error("lower_binop: unhandled operator");
    }
    emit3(machine_op, v, a, b);
    return v;
  }

  int lower_unop(const Expr& expr) {
    if (expr.un_op == UnOp::lnot) return materialize_condition(expr);
    const int a = lower_expr(*expr.args[0]);
    const int v = code_.new_vreg();
    Opcode machine_op;
    switch (expr.un_op) {
      case UnOp::neg: machine_op = Opcode::neg; break;
      case UnOp::fneg: machine_op = Opcode::fneg; break;
      case UnOp::to_f64: machine_op = Opcode::cvtif; break;
      case UnOp::to_i64: machine_op = Opcode::cvtfi; break;
      default:
        throw std::logic_error("lower_unop: unhandled operator");
    }
    VInst inst;
    inst.op = machine_op;
    inst.dst = v;
    inst.a = a;
    emit(std::move(inst));
    return v;
  }

  /// Evaluates a boolean expression into a 0/1 vreg using branches.
  int materialize_condition(const Expr& expr) {
    const int v = code_.new_vreg();
    const int false_label = code_.new_label();
    const int end_label = code_.new_label();
    emit_ldi(v, 1);
    lower_cond(expr, end_label, false_label);
    bind_label(false_label);
    emit_ldi(v, 0);
    bind_label(end_label);
    // Both labels resolve to whatever is emitted next; the epilogue
    // guarantees at least one trailing instruction.
    return v;
  }

  /// Emits branches so control reaches `true_label` when expr is truthy and
  /// `false_label` otherwise. Logical operators short-circuit.
  void lower_cond(const Expr& expr, int true_label, int false_label) {
    if (expr.kind == Expr::Kind::binop && expr.bin_op == BinOp::land) {
      const int mid = code_.new_label();
      lower_cond(*expr.args[0], mid, false_label);
      bind_label(mid);
      lower_cond(*expr.args[1], true_label, false_label);
      return;
    }
    if (expr.kind == Expr::Kind::binop && expr.bin_op == BinOp::lor) {
      const int mid = code_.new_label();
      lower_cond(*expr.args[0], true_label, mid);
      bind_label(mid);
      lower_cond(*expr.args[1], true_label, false_label);
      return;
    }
    if (expr.kind == Expr::Kind::unop && expr.un_op == UnOp::lnot) {
      lower_cond(*expr.args[0], false_label, true_label);
      return;
    }
    if (expr.kind == Expr::Kind::binop && binop_is_comparison(expr.bin_op)) {
      const bool fp = binop_is_fp(expr.bin_op);
      const int a = lower_expr(*expr.args[0]);
      const int b = lower_expr(*expr.args[1]);
      const int c = code_.new_vreg();
      // fcmp shares the cmp opcode encoding on fp operands: the compiler
      // knows operand types statically, so it emits cmp for both and relies
      // on typed comparison below.
      if (fp) {
        // Compare doubles via (a < b) etc. Lower as: cvt-free fcmp modelled
        // with cmp on raw bits would be wrong; use dedicated sequence:
        // t = fsub(a,b); branch on sign via cmp with zero is also wrong for
        // NaN. Instead emit cmp after converting: the VM's cmp inspects
        // operand bit patterns as integers, so we need a true fp compare.
        // We encode it as fsub + cvtfi(sign): simpler and exact for our
        // generated value ranges is to reuse Opcode::cmp with the fcmp
        // flag via imm=1, which the VM interprets as an fp compare.
        VInst inst;
        inst.op = Opcode::cmp;
        inst.dst = c;
        inst.a = a;
        inst.b = b;
        inst.imm = 1;  // fp-compare flag
        emit(std::move(inst));
      } else {
        emit3(Opcode::cmp, c, a, b);
      }
      Opcode branch;
      switch (expr.bin_op) {
        case BinOp::lt: case BinOp::flt: branch = Opcode::blt; break;
        case BinOp::le: branch = Opcode::ble; break;
        case BinOp::gt: case BinOp::fgt: branch = Opcode::bgt; break;
        case BinOp::ge: branch = Opcode::bge; break;
        case BinOp::eq: branch = Opcode::beq; break;
        case BinOp::ne: branch = Opcode::bne; break;
        default:
          throw std::logic_error("lower_cond: unhandled comparison");
      }
      emit_branch(branch, c, true_label);
      emit_jmp(false_label);
      return;
    }
    // Generic truthiness: value != 0.
    const int v = lower_expr(expr);
    emit_branch(Opcode::bne, v, true_label);
    emit_jmp(false_label);
  }

  // --- statements -----------------------------------------------------------

  void lower_body(const std::vector<StmtPtr>& body) {
    for (const auto& stmt : body) lower_stmt(*stmt);
  }

  void lower_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::assign: {
        const int v = lower_expr(*stmt.expr);
        emit_mov(local_vregs_.at(static_cast<std::size_t>(stmt.local_index)),
                 v);
        break;
      }
      case Stmt::Kind::index_store: {
        const int addr =
            lower_address(*stmt.base, *stmt.index, stmt.byte_access);
        const int v = lower_expr(*stmt.value);
        VInst inst;
        inst.op = stmt.byte_access ? Opcode::storeb : Opcode::store;
        inst.a = addr;
        inst.b = v;
        inst.imm = 0;
        emit(std::move(inst));
        break;
      }
      case Stmt::Kind::if_else: {
        const int then_label = code_.new_label();
        const int else_label = code_.new_label();
        const int end_label = code_.new_label();
        lower_cond(*stmt.expr, then_label, else_label);
        bind_label(then_label);
        lower_body(stmt.then_body);
        if (!stmt.else_body.empty()) {
          emit_jmp(end_label);
          bind_label(else_label);
          lower_body(stmt.else_body);
          bind_label(end_label);
        } else {
          bind_label(else_label);
        }
        break;
      }
      case Stmt::Kind::for_loop: {
        const int counter =
            local_vregs_.at(static_cast<std::size_t>(stmt.local_index));
        const int init_v = lower_expr(*stmt.init);
        emit_mov(counter, init_v);
        const int bound_v = lower_expr(*stmt.bound);  // evaluated once
        const int head = code_.new_label();
        const int body_label = code_.new_label();
        const int end = code_.new_label();
        bind_label(head);
        const int c = code_.new_vreg();
        emit3(Opcode::cmp, c, counter, bound_v);
        emit_branch(Opcode::bge, c, end);
        bind_label(body_label);
        lower_body(stmt.then_body);
        const int step = code_.new_vreg();
        emit_ldi(step, stmt.step_value);
        emit3(Opcode::add, counter, counter, step);
        emit_jmp(head);
        bind_label(end);
        break;
      }
      case Stmt::Kind::ret: {
        const int v =
            stmt.expr ? lower_expr(*stmt.expr) : [&] {
              const int zero = code_.new_vreg();
              emit_ldi(zero, 0);
              return zero;
            }();
        VInst inst;
        inst.op = Opcode::ret;
        inst.a = v;
        emit(std::move(inst));
        break;
      }
      case Stmt::Kind::expr_stmt:
        (void)lower_expr(*stmt.expr);
        break;
      case Stmt::Kind::syscall_stmt: {
        const int v = lower_expr(*stmt.expr);
        VInst inst;
        inst.op = Opcode::syscall;
        inst.dst = code_.new_vreg();
        inst.imm = static_cast<std::int64_t>(stmt.sys);
        inst.call_args = {v};
        emit(std::move(inst));
        break;
      }
      case Stmt::Kind::switch_stmt: {
        if (stmt.cases.empty()) {
          (void)lower_expr(*stmt.expr);
          break;
        }
        const int selector = lower_expr(*stmt.expr);
        const auto n = static_cast<std::int64_t>(stmt.cases.size());
        const int vn = code_.new_vreg();
        emit_ldi(vn, n);
        const int t0 = code_.new_vreg();
        emit3(Opcode::modi, t0, selector, vn);
        const int t1 = code_.new_vreg();
        emit3(Opcode::add, t1, t0, vn);
        const int idx = code_.new_vreg();
        emit3(Opcode::modi, idx, t1, vn);

        std::vector<std::int32_t> table;
        for (std::size_t k = 0; k < stmt.cases.size(); ++k)
          table.push_back(code_.new_label());
        const int end_label = code_.new_label();
        const auto table_id =
            static_cast<std::int64_t>(code_.jump_tables.size());
        code_.jump_tables.push_back(table);

        VInst dispatch;
        dispatch.op = Opcode::jmpi;
        dispatch.a = idx;
        dispatch.imm = table_id;
        emit(std::move(dispatch));

        for (std::size_t k = 0; k < stmt.cases.size(); ++k) {
          bind_label(table[k]);
          lower_body(stmt.cases[k]);
          emit_jmp(end_label);
        }
        bind_label(end_label);
        break;
      }
    }
  }

  const SourceFunction& fn_;
  VCode code_;
  std::vector<int> local_vregs_;
  std::vector<int> pending_labels_;
};

// --- AST-level unrolling ----------------------------------------------------

void unroll_in_body(std::vector<StmtPtr>& body, std::int64_t max_trip);

void unroll_stmt(StmtPtr& stmt, std::int64_t max_trip) {
  unroll_in_body(stmt->then_body, max_trip);
  unroll_in_body(stmt->else_body, max_trip);
  for (auto& c : stmt->cases) unroll_in_body(c, max_trip);
}

void unroll_in_body(std::vector<StmtPtr>& body, std::int64_t max_trip) {
  std::vector<StmtPtr> out;
  for (auto& stmt : body) {
    unroll_stmt(stmt, max_trip);
    const bool unrollable =
        stmt->kind == Stmt::Kind::for_loop && stmt->init &&
        stmt->init->kind == Expr::Kind::int_const && stmt->bound &&
        stmt->bound->kind == Expr::Kind::int_const && stmt->step_value > 0;
    if (unrollable) {
      const std::int64_t init = stmt->init->int_value;
      const std::int64_t bound = stmt->bound->int_value;
      const std::int64_t trips =
          bound > init ? (bound - init + stmt->step_value - 1) /
                             stmt->step_value
                       : 0;
      if (trips <= max_trip) {
        for (std::int64_t i = init; i < bound; i += stmt->step_value) {
          out.push_back(make_assign(stmt->local_index, make_int(i)));
          for (const auto& inner : stmt->then_body)
            out.push_back(inner->clone());
        }
        // Loop leaves the counter at its final value.
        out.push_back(make_assign(
            stmt->local_index,
            make_int(init + trips * stmt->step_value)));
        continue;
      }
    }
    out.push_back(std::move(stmt));
  }
  body = std::move(out);
}

}  // namespace

VCode lower_function(const SourceFunction& fn) {
  Lowerer lowerer(fn);
  return lowerer.run();
}

void unroll_constant_loops(SourceFunction& fn, std::int64_t max_trip) {
  unroll_in_body(fn.body, max_trip);
}

}  // namespace patchecko
