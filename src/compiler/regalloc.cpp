#include "compiler/regalloc.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace patchecko {

namespace {

constexpr int max_call_args = 4;

struct Interval {
  int vreg = -1;
  int start = 0;
  int end = 0;
  bool crosses_call = false;
};

bool is_call_like(Opcode op) {
  return op == Opcode::call || op == Opcode::callr ||
         op == Opcode::libcall || op == Opcode::syscall;
}

// --- liveness approximation -------------------------------------------------

std::vector<Interval> compute_intervals(const VCode& code) {
  std::unordered_map<int, Interval> by_vreg;
  auto touch = [&](int vreg, int pos) {
    if (vreg < 0) return;
    auto [it, inserted] = by_vreg.try_emplace(vreg);
    Interval& iv = it->second;
    if (inserted) {
      iv.vreg = vreg;
      iv.start = pos;
      iv.end = pos;
    } else {
      iv.start = std::min(iv.start, pos);
      iv.end = std::max(iv.end, pos);
    }
  };

  // Parameters are defined at entry and must stay pairwise-disjoint through
  // the prologue pops, so they all overlap position -1..0.
  for (int p : code.param_vregs) {
    touch(p, -1);
    touch(p, 0);
  }
  for (std::size_t i = 0; i < code.insts.size(); ++i) {
    const VInst& inst = code.insts[i];
    const int pos = static_cast<int>(i);
    touch(inst.dst, pos);
    touch(inst.a, pos);
    touch(inst.b, pos);
    for (int arg : inst.call_args) touch(arg, pos);
  }

  // Extend intervals over loop bodies: anything mentioned inside a backward
  // branch's range is conservatively live across the whole range.
  std::unordered_map<int, int> label_pos;
  for (std::size_t i = 0; i < code.insts.size(); ++i)
    for (int l : code.insts[i].labels) label_pos.emplace(l, static_cast<int>(i));

  std::vector<std::pair<int, int>> loop_ranges;
  for (std::size_t i = 0; i < code.insts.size(); ++i) {
    const VInst& inst = code.insts[i];
    if (inst.label < 0) continue;
    const auto it = label_pos.find(inst.label);
    if (it != label_pos.end() && it->second <= static_cast<int>(i))
      loop_ranges.emplace_back(it->second, static_cast<int>(i));
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (auto& [vreg, iv] : by_vreg) {
      for (const auto& [lo, hi] : loop_ranges) {
        const bool intersects = iv.start <= hi && iv.end >= lo;
        if (!intersects) continue;
        if (iv.start > lo || iv.end < hi) {
          iv.start = std::min(iv.start, lo);
          iv.end = std::max(iv.end, hi);
          changed = true;
        }
      }
    }
  }

  // Mark intervals crossing a call-like instruction strictly inside.
  std::vector<int> call_positions;
  for (std::size_t i = 0; i < code.insts.size(); ++i)
    if (is_call_like(code.insts[i].op))
      call_positions.push_back(static_cast<int>(i));
  std::vector<Interval> out;
  out.reserve(by_vreg.size());
  for (auto& [vreg, iv] : by_vreg) {
    for (int p : call_positions)
      if (iv.start < p && p < iv.end) {
        iv.crosses_call = true;
        break;
      }
    out.push_back(iv);
  }
  std::sort(out.begin(), out.end(), [](const Interval& x, const Interval& y) {
    if (x.start != y.start) return x.start < y.start;
    return x.vreg < y.vreg;
  });
  return out;
}

// --- linear scan --------------------------------------------------------------

struct Allocation {
  std::unordered_map<int, int> phys;     // vreg -> physical register
  std::unordered_map<int, int> slot;     // vreg -> spill slot index
  int slot_count = 0;
};

Allocation linear_scan(const std::vector<Interval>& intervals,
                       int pool_size) {
  Allocation alloc;
  auto spill = [&](int vreg) {
    alloc.slot[vreg] = alloc.slot_count++;
  };

  struct Active {
    Interval iv;
    int reg;
  };
  std::vector<Active> active;  // kept sorted by iv.end ascending

  for (const Interval& iv : intervals) {
    // Expire.
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](const Active& a) {
                                  return a.iv.end < iv.start;
                                }),
                 active.end());
    // Free register search.
    std::vector<bool> used(static_cast<std::size_t>(pool_size), false);
    for (const Active& a : active) used[static_cast<std::size_t>(a.reg)] = true;
    int chosen = -1;
    for (int r = 0; r < pool_size; ++r) {
      if (used[static_cast<std::size_t>(r)]) continue;
      if (r == 0 && iv.crosses_call) continue;  // r0 holds return values
      chosen = r;
      break;
    }
    if (chosen >= 0) {
      alloc.phys[iv.vreg] = chosen;
      active.push_back({iv, chosen});
      std::sort(active.begin(), active.end(),
                [](const Active& x, const Active& y) {
                  return x.iv.end < y.iv.end;
                });
      continue;
    }
    // Spill: evict the active interval ending last if it outlives us and its
    // register is acceptable; otherwise spill the new interval.
    Active* victim = nullptr;
    for (auto it = active.rbegin(); it != active.rend(); ++it) {
      if (it->iv.end <= iv.end) break;
      if (iv.crosses_call && it->reg == 0) continue;
      victim = &*it;
      break;
    }
    if (victim != nullptr) {
      alloc.phys[iv.vreg] = victim->reg;
      spill(victim->iv.vreg);
      alloc.phys.erase(victim->iv.vreg);
      victim->iv = iv;
      std::sort(active.begin(), active.end(),
                [](const Active& x, const Active& y) {
                  return x.iv.end < y.iv.end;
                });
    } else {
      spill(iv.vreg);
    }
  }
  return alloc;
}

// --- emission ----------------------------------------------------------------

class Emitter {
 public:
  Emitter(const VCode& code, Arch arch, bool spill_all)
      : code_(code), arch_(arch) {
    const int regs = register_count(arch);
    scratch0_ = static_cast<std::uint8_t>(regs - 3);
    scratch1_ = static_cast<std::uint8_t>(regs - 2);
    scratch2_ = static_cast<std::uint8_t>(regs - 1);
    const int pool = spill_all ? 0 : regs - 3;
    alloc_ = linear_scan(compute_intervals(code), pool);
    two_operand_ = arch == Arch::x86 || arch == Arch::amd64;
  }

  FunctionBinary run() {
    FunctionBinary fn;
    fn.arch = arch_;
    fn.frame_size = static_cast<std::int64_t>(alloc_.slot_count) * 8;

    emit_prologue(fn);
    for (const VInst& inst : code_.insts) {
      for (int l : inst.labels)
        label_final_[l] = static_cast<std::int32_t>(out_.size());
      emit_inst(inst);
    }
    patch_branches();
    fn.code = std::move(out_);
    fn.jump_tables.reserve(code_.jump_tables.size());
    for (const auto& table : code_.jump_tables) {
      std::vector<std::int32_t> resolved;
      resolved.reserve(table.size());
      for (std::int32_t label : table) resolved.push_back(final_of(label));
      fn.jump_tables.push_back(std::move(resolved));
    }
    return fn;
  }

 private:
  std::int32_t final_of(int label) const {
    const auto it = label_final_.find(label);
    if (it == label_final_.end())
      throw std::logic_error("regalloc: unbound label");
    return it->second;
  }

  void out(Instruction inst) { out_.push_back(inst); }

  void out_simple(Opcode op, std::uint8_t dst = reg::none,
                  std::uint8_t a = reg::none, std::uint8_t b = reg::none,
                  std::int64_t imm = 0) {
    Instruction inst;
    inst.op = op;
    inst.dst = dst;
    inst.src1 = a;
    inst.src2 = b;
    inst.imm = imm;
    out(inst);
  }

  bool spilled(int vreg) const { return alloc_.slot.count(vreg) != 0; }

  std::int64_t slot_offset(int vreg) const {
    return static_cast<std::int64_t>(alloc_.slot.at(vreg)) * 8;
  }

  std::uint8_t phys(int vreg) const {
    return static_cast<std::uint8_t>(alloc_.phys.at(vreg));
  }

  /// Materializes vreg's value in a register (its home register, or loaded
  /// into `scratch`).
  std::uint8_t read_reg(int vreg, std::uint8_t scratch) {
    if (!spilled(vreg)) return phys(vreg);
    out_simple(Opcode::load, scratch, reg::fp, reg::none, slot_offset(vreg));
    return scratch;
  }

  /// Register the result of an op should be computed into.
  std::uint8_t dst_reg(int vreg) {
    return spilled(vreg) ? scratch2_ : phys(vreg);
  }

  void write_back(int vreg, std::uint8_t computed) {
    if (spilled(vreg))
      out_simple(Opcode::store, reg::none, reg::fp, computed,
                 slot_offset(vreg));
  }

  void emit_prologue(FunctionBinary& fn) {
    out_simple(Opcode::frame, reg::none, reg::none, reg::none, fn.frame_size);
    const int k = static_cast<int>(code_.param_vregs.size());
    if (k > max_call_args)
      throw std::logic_error("regalloc: too many parameters");
    for (int j = 0; j < k; ++j)
      out_simple(Opcode::push, reg::none, static_cast<std::uint8_t>(j));
    for (int j = k - 1; j >= 0; --j) {
      const int vreg = code_.param_vregs[static_cast<std::size_t>(j)];
      if (spilled(vreg)) {
        out_simple(Opcode::pop, scratch0_);
        write_back(vreg, scratch0_);
      } else {
        out_simple(Opcode::pop, phys(vreg));
      }
    }
  }

  // Branch targets are label ids encoded as negative placeholders until all
  // labels have final positions.
  static std::int32_t placeholder(int label) { return -(label + 2); }

  void patch_branches() {
    for (Instruction& inst : out_) {
      if (inst.target <= -2) {
        const int label = -(inst.target + 2);
        inst.target = final_of(label);
      }
    }
  }

  void emit_binary_op(const VInst& inst) {
    const std::uint8_t ra = read_reg(inst.a, scratch0_);
    const std::uint8_t rb = read_reg(inst.b, scratch1_);
    const std::uint8_t rd = dst_reg(inst.dst);
    if (two_operand_ && inst.op != Opcode::cmp) {
      // x86 destructive two-operand form: dst must alias the left operand.
      if (rd == ra) {
        out_simple(inst.op, rd, rd, rb, inst.imm);
      } else if (rd == rb) {
        out_simple(Opcode::mov, scratch2_, rb);
        out_simple(Opcode::mov, rd, ra);
        out_simple(inst.op, rd, rd, scratch2_, inst.imm);
      } else {
        out_simple(Opcode::mov, rd, ra);
        out_simple(inst.op, rd, rd, rb, inst.imm);
      }
    } else {
      out_simple(inst.op, rd, ra, rb, inst.imm);
    }
    write_back(inst.dst, rd);
  }

  void emit_unary_op(const VInst& inst) {
    const std::uint8_t ra = read_reg(inst.a, scratch0_);
    const std::uint8_t rd = dst_reg(inst.dst);
    if (two_operand_ && rd != ra) {
      out_simple(Opcode::mov, rd, ra);
      out_simple(inst.op, rd, rd);
    } else {
      out_simple(inst.op, rd, ra);
    }
    write_back(inst.dst, rd);
  }

  void emit_call_like(const VInst& inst) {
    const int k = static_cast<int>(inst.call_args.size());
    if (k > max_call_args)
      throw std::logic_error("regalloc: too many call arguments");
    // Save caller-held r1..r(k-1); r0 is excluded from live-across vregs.
    for (int j = 1; j < k; ++j)
      out_simple(Opcode::push, reg::none, static_cast<std::uint8_t>(j));
    // An indirect callee id travels via the stack too: the argument pops
    // below clobber r0..r(k-1), which could hold the id's register.
    if (inst.op == Opcode::callr) {
      const std::uint8_t id = read_reg(inst.a, scratch0_);
      out_simple(Opcode::push, reg::none, id);
    }
    // Pass arguments through the stack to avoid shuffle hazards.
    for (int arg : inst.call_args) {
      const std::uint8_t r = read_reg(arg, scratch0_);
      out_simple(Opcode::push, reg::none, r);
    }
    for (int j = k - 1; j >= 0; --j)
      out_simple(Opcode::pop, static_cast<std::uint8_t>(j));
    if (inst.op == Opcode::callr) {
      out_simple(Opcode::pop, scratch2_);
      out_simple(Opcode::callr, reg::none, scratch2_, reg::none);
    } else {
      out_simple(inst.op, reg::none, reg::none, reg::none, inst.imm);
    }
    for (int j = k - 1; j >= 1; --j)
      out_simple(Opcode::pop, static_cast<std::uint8_t>(j));
    if (inst.dst >= 0) {
      if (spilled(inst.dst)) {
        write_back(inst.dst, 0);
      } else if (phys(inst.dst) != 0) {
        out_simple(Opcode::mov, phys(inst.dst), 0);
      }
    }
  }

  void emit_inst(const VInst& inst) {
    switch (inst.op) {
      case Opcode::ldi:
      case Opcode::ldstr: {
        const std::uint8_t rd = dst_reg(inst.dst);
        out_simple(inst.op, rd, reg::none, reg::none, inst.imm);
        write_back(inst.dst, rd);
        break;
      }
      case Opcode::mov: {
        const std::uint8_t ra = read_reg(inst.a, scratch0_);
        if (spilled(inst.dst)) {
          write_back(inst.dst, ra);
        } else if (phys(inst.dst) != ra) {
          out_simple(Opcode::mov, phys(inst.dst), ra);
        }
        break;
      }
      case Opcode::add: case Opcode::sub: case Opcode::mul:
      case Opcode::divi: case Opcode::modi: case Opcode::andi:
      case Opcode::ori: case Opcode::xori: case Opcode::shl:
      case Opcode::shr: case Opcode::cmp: case Opcode::fadd:
      case Opcode::fsub: case Opcode::fmul: case Opcode::fdiv:
        emit_binary_op(inst);
        break;
      case Opcode::neg: case Opcode::fneg: case Opcode::cvtif:
      case Opcode::cvtfi:
        emit_unary_op(inst);
        break;
      case Opcode::load:
      case Opcode::loadb: {
        const std::uint8_t ra = read_reg(inst.a, scratch0_);
        const std::uint8_t rd = dst_reg(inst.dst);
        out_simple(inst.op, rd, ra, reg::none, inst.imm);
        write_back(inst.dst, rd);
        break;
      }
      case Opcode::store:
      case Opcode::storeb: {
        const std::uint8_t ra = read_reg(inst.a, scratch0_);
        const std::uint8_t rb = read_reg(inst.b, scratch1_);
        out_simple(inst.op, reg::none, ra, rb, inst.imm);
        break;
      }
      case Opcode::jmp: {
        Instruction jump;
        jump.op = Opcode::jmp;
        jump.target = placeholder(inst.label);
        out(jump);
        break;
      }
      case Opcode::beq: case Opcode::bne: case Opcode::blt:
      case Opcode::bge: case Opcode::bgt: case Opcode::ble: {
        const std::uint8_t ra = read_reg(inst.a, scratch0_);
        Instruction branch;
        branch.op = inst.op;
        branch.src1 = ra;
        branch.target = placeholder(inst.label);
        out(branch);
        break;
      }
      case Opcode::jmpi: {
        const std::uint8_t ra = read_reg(inst.a, scratch0_);
        out_simple(Opcode::jmpi, reg::none, ra, reg::none, inst.imm);
        break;
      }
      case Opcode::call:
      case Opcode::callr:
      case Opcode::libcall:
      case Opcode::syscall:
        emit_call_like(inst);
        break;
      case Opcode::ret: {
        const std::uint8_t ra = read_reg(inst.a, scratch0_);
        if (ra != 0) out_simple(Opcode::mov, 0, ra);
        out_simple(Opcode::ret);
        break;
      }
      case Opcode::nop:
        out_simple(Opcode::nop);
        break;
      default:
        throw std::logic_error("regalloc: unexpected vcode opcode");
    }
  }

  const VCode& code_;
  Arch arch_;
  bool two_operand_ = false;
  std::uint8_t scratch0_ = 0, scratch1_ = 0, scratch2_ = 0;
  Allocation alloc_;
  std::vector<Instruction> out_;
  std::unordered_map<int, std::int32_t> label_final_;
};

}  // namespace

FunctionBinary allocate_and_emit(const VCode& code, Arch arch, OptLevel opt,
                                 bool spill_all) {
  Emitter emitter(code, arch, spill_all);
  FunctionBinary fn = emitter.run();
  fn.opt = opt;
  return fn;
}

}  // namespace patchecko
