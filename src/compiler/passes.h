// Mid-end optimization passes over VCode (internal to the compiler).
#pragma once

#include <cstdint>

#include "compiler/vcode.h"

namespace patchecko {

/// Runs the pass pipeline selected by `opt` for `arch`. `schedule_seed`
/// drives the deterministic Ofast scheduling shuffle.
void run_passes(VCode& code, Arch arch, OptLevel opt,
                std::uint64_t schedule_seed);

// Individual passes, exposed for unit testing.
void pass_constant_fold(VCode& code);
void pass_dead_code(VCode& code);
void pass_copy_propagate(VCode& code);
void pass_address_fold(VCode& code);
void pass_branch_thread(VCode& code);
void pass_remove_unreachable(VCode& code);
void pass_align_loops(VCode& code);
void pass_schedule_shuffle(VCode& code, std::uint64_t seed);

}  // namespace patchecko
