// Virtual-register intermediate code.
//
// The compiler lowers MiniC into VCode (unbounded virtual registers, labels,
// call pseudo-instructions), runs the optimization passes at this level, and
// only then assigns physical registers and expands calling conventions per
// architecture (regalloc.h). This mirrors a classic mid-end/back-end split
// and is what makes one source function genuinely yield 24 distinct binaries.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/isa.h"

namespace patchecko {

/// One virtual instruction. Registers are virtual ids (>= 0); `label` is a
/// branch target label id; `labels` lists label ids bound to this
/// instruction's position; call-like ops carry their argument vregs in
/// `call_args`.
struct VInst {
  Opcode op = Opcode::nop;
  int dst = -1;
  int a = -1;
  int b = -1;
  std::int64_t imm = 0;
  int label = -1;
  std::vector<int> labels;
  std::vector<int> call_args;
};

struct VCode {
  std::vector<VInst> insts;
  int next_vreg = 0;
  int next_label = 0;
  /// Jump tables hold label ids until regalloc resolves them to indices.
  std::vector<std::vector<std::int32_t>> jump_tables;
  /// One vreg per parameter, defined by the prologue.
  std::vector<int> param_vregs;

  int new_vreg() { return next_vreg++; }
  int new_label() { return next_label++; }
};

/// True for instructions with no side effect beyond writing `dst` (safely
/// removable when dst is dead). Loads and div/mod are excluded: they can
/// trap, and removing a trap changes observable behaviour.
bool is_pure(const VInst& inst);

/// True when the instruction can transfer control (branches, jumps, ret).
bool is_control(const VInst& inst);

}  // namespace patchecko
