// Public compiler interface: MiniC -> FunctionBinary / LibraryBinary.
//
// Reproduces the paper's build matrix: every (architecture, optimization
// level) pair yields a distinct binary from identical source. Differences
// come from register pressure (spills), O0 keeping locals in memory,
// constant folding / DCE / copy propagation at O1+, addressing-mode fusion
// and branch threading at O2+, loop unrolling at O3/Ofast, size-oriented
// selection at Oz, and deterministic instruction scheduling at Ofast.
#pragma once

#include <cstdint>

#include "binary/binary.h"
#include "source/ast.h"

namespace patchecko {

/// Code-generation version stamp, part of every prebuilt-corpus cache key
/// (src/corpus). Bump whenever a change to instruction selection, register
/// allocation or any optimization pass can alter emitted code for an
/// unchanged source: stale store entries then miss and rebuild instead of
/// silently serving binaries the current compiler would no longer produce.
inline constexpr std::uint64_t kCompilerVersion = 1;

/// Compiles one function of `library`. `function_index` must be valid.
/// The returned binary's `source_uid` is seeded from `uid_base` + index so
/// evaluation can identify same-source variants across the build matrix.
FunctionBinary compile_function(const SourceLibrary& library,
                                std::size_t function_index, Arch arch,
                                OptLevel opt, std::uint64_t uid_base = 0);

/// Compiles a whole library for one (arch, opt) pair.
LibraryBinary compile_library(const SourceLibrary& library, Arch arch,
                              OptLevel opt, std::uint64_t uid_base = 0);

}  // namespace patchecko
