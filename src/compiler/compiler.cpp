#include "compiler/compiler.h"

#include "compiler/lower.h"
#include "compiler/passes.h"
#include "compiler/regalloc.h"

namespace patchecko {

namespace {

// Stable per-function seed so Ofast scheduling is deterministic across runs.
std::uint64_t schedule_seed(const SourceFunction& fn, Arch arch) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : fn.name) h = (h ^ static_cast<std::uint8_t>(c)) * 1099511628211ULL;
  h ^= static_cast<std::uint64_t>(arch) << 32;
  return h;
}

}  // namespace

FunctionBinary compile_function(const SourceLibrary& library,
                                std::size_t function_index, Arch arch,
                                OptLevel opt, std::uint64_t uid_base) {
  const SourceFunction& original = library.functions.at(function_index);

  SourceFunction working = original;  // deep copy: unrolling mutates
  if (opt == OptLevel::O3 || opt == OptLevel::Ofast)
    unroll_constant_loops(working, /*max_trip=*/8);

  VCode vcode = lower_function(working);
  run_passes(vcode, arch, opt, schedule_seed(working, arch));

  FunctionBinary fn =
      allocate_and_emit(vcode, arch, opt, /*spill_all=*/opt == OptLevel::O0);
  fn.name = original.name;
  fn.id = static_cast<std::uint32_t>(function_index);
  fn.param_types = original.param_types;
  fn.source_uid = uid_base + function_index;
  return fn;
}

LibraryBinary compile_library(const SourceLibrary& library, Arch arch,
                              OptLevel opt, std::uint64_t uid_base) {
  LibraryBinary out;
  out.name = library.name;
  out.arch = arch;
  out.opt = opt;
  out.strings = library.strings;
  out.functions.reserve(library.functions.size());
  for (std::size_t i = 0; i < library.functions.size(); ++i)
    out.functions.push_back(
        compile_function(library, i, arch, opt, uid_base));
  return out;
}

}  // namespace patchecko
