// Execution-environment generation (the paper's LibFuzzer role).
//
// The dynamic engine needs K fixed execution environments per CVE function:
// concrete argument values plus the byte buffers pointer arguments reference.
// We generate them with a light coverage-guided fuzzer: random seeds,
// mutation of surviving inputs, and greedy selection for instruction-site
// coverage of the subject function. Candidate functions are later *validated*
// against these environments — any crash removes the candidate, exactly the
// paper's input-validation pruning step.
#pragma once

#include <cstdint>
#include <vector>

#include "binary/binary.h"
#include "source/interp.h"
#include "util/rng.h"
#include "vm/machine.h"

namespace patchecko {

struct FuzzConfig {
  std::size_t env_count = 6;        ///< K fixed environments to produce
  std::size_t attempts = 96;        ///< generation/mutation budget
  std::int64_t min_buffer = 8;
  std::int64_t max_buffer = 96;
  MachineConfig machine;
};

/// A fresh random environment for the given signature. Pointer parameters
/// get byte buffers; by corpus convention an i64 parameter directly following
/// a ptr is that buffer's length, so it is set consistently.
CallEnv random_env(Rng& rng, const std::vector<ValueType>& params,
                   const FuzzConfig& config);

/// Mutates an environment: byte flips, length-preserving splices, integer
/// tweaks, and dictionary injections (adjacent pairs of interesting bytes).
/// Keeps length parameters consistent with their buffers.
CallEnv mutate_env(Rng& rng, const CallEnv& env,
                   const std::vector<ValueType>& params,
                   const FuzzConfig& config,
                   const std::vector<std::uint8_t>& dictionary = {});

/// LibFuzzer-style dictionary: byte-sized immediates harvested from the
/// subject's code. Comparison guards ("data[i] == 0xff") compare against
/// materialized constants, so planting these bytes in the input is what
/// drives execution into rare branches.
std::vector<std::uint8_t> byte_dictionary(const FunctionBinary& function);

/// Coverage-guided environment selection for `function_index` of `library`:
/// returns up to env_count environments on which the subject executes
/// successfully, preferring diverse instruction coverage.
std::vector<CallEnv> generate_environments(const LibraryBinary& library,
                                           std::size_t function_index,
                                           Rng& rng,
                                           const FuzzConfig& config);

/// Paper's "candidate functions execution validation": true iff the
/// candidate returns normally on every environment. On failure,
/// `first_crash_env` (when non-null) receives the index of the first
/// environment that crashed — decision provenance records it as the prune
/// reason.
bool validate_candidate(const Machine& machine, std::size_t function_index,
                        const std::vector<CallEnv>& environments,
                        std::size_t* first_crash_env = nullptr);

}  // namespace patchecko
