#include "fuzz/fuzzer.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"

namespace patchecko {

namespace {

struct FuzzMetrics {
  obs::Counter& envs_generated =
      obs::Registry::global().counter("fuzz.envs_generated");
  obs::Counter& env_crashes =
      obs::Registry::global().counter("fuzz.env_crashes");
  obs::Counter& envs_selected =
      obs::Registry::global().counter("fuzz.envs_selected");
  obs::Counter& candidates_validated =
      obs::Registry::global().counter("fuzz.candidates_validated");
  obs::Counter& candidates_crash_pruned =
      obs::Registry::global().counter("fuzz.candidates_crash_pruned");

  static FuzzMetrics& get() {
    static FuzzMetrics metrics;
    return metrics;
  }
};

}  // namespace

CallEnv random_env(Rng& rng, const std::vector<ValueType>& params,
                   const FuzzConfig& config) {
  CallEnv env;
  int last_buffer = -1;
  for (std::size_t p = 0; p < params.size(); ++p) {
    switch (params[p]) {
      case ValueType::ptr: {
        const auto len = rng.uniform(config.min_buffer, config.max_buffer);
        std::vector<std::uint8_t> buffer(static_cast<std::size_t>(len));
        for (auto& byte : buffer)
          byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
        // Sprinkle NULs so strlen-style scans terminate at varied offsets.
        if (rng.chance(0.7) && !buffer.empty())
          buffer[static_cast<std::size_t>(
              rng.uniform(0, len - 1))] = 0;
        env.buffers.push_back(std::move(buffer));
        last_buffer = static_cast<int>(env.buffers.size()) - 1;
        env.args.push_back(Value::from_ptr(last_buffer, 0));
        break;
      }
      case ValueType::i64: {
        // Corpus convention: an i64 right after a ptr is the buffer length.
        if (p > 0 && params[p - 1] == ValueType::ptr && last_buffer >= 0) {
          env.args.push_back(Value::from_int(static_cast<std::int64_t>(
              env.buffers[static_cast<std::size_t>(last_buffer)].size())));
        } else {
          env.args.push_back(Value::from_int(rng.uniform(-4, 255)));
        }
        break;
      }
      case ValueType::f64:
        env.args.push_back(Value::from_fp(rng.uniform_real(-4.0, 4.0)));
        break;
    }
  }
  return env;
}

std::vector<std::uint8_t> byte_dictionary(const FunctionBinary& function) {
  std::vector<std::uint8_t> dictionary;
  for (const Instruction& inst : function.code) {
    if (inst.op != Opcode::ldi) continue;
    if (inst.imm < 0 || inst.imm > 255) continue;
    const auto byte = static_cast<std::uint8_t>(inst.imm);
    if (std::find(dictionary.begin(), dictionary.end(), byte) ==
        dictionary.end())
      dictionary.push_back(byte);
  }
  return dictionary;
}

CallEnv mutate_env(Rng& rng, const CallEnv& env,
                   const std::vector<ValueType>& params,
                   const FuzzConfig& config,
                   const std::vector<std::uint8_t>& dictionary) {
  CallEnv out = env;
  // Buffer mutations.
  for (auto& buffer : out.buffers) {
    if (buffer.empty()) continue;
    const int flips = static_cast<int>(rng.uniform(1, 6));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(rng.uniform(
          0, static_cast<std::int64_t>(buffer.size()) - 1));
      buffer[pos] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    // Dictionary injection: plant adjacent pairs of code-derived constants
    // at several positions — the move that lets the fuzzer reach branches
    // guarded by specific byte patterns (e.g. the 0xff 0x00 pair of
    // CVE-2018-9412's unsynchronization markers).
    if (!dictionary.empty() && rng.chance(0.7)) {
      const int plants = static_cast<int>(rng.uniform(1, 4));
      for (int plant = 0; plant < plants; ++plant) {
        const std::uint8_t first = rng.pick(dictionary);
        const std::uint8_t second = rng.pick(dictionary);
        const auto pos = static_cast<std::size_t>(rng.uniform(
            0, static_cast<std::int64_t>(buffer.size()) - 1));
        buffer[pos] = first;
        if (pos + 1 < buffer.size()) buffer[pos + 1] = second;
      }
    }
    if (rng.chance(0.25)) {
      // Resize within limits (keeps any length params in sync below).
      const auto len =
          rng.uniform(config.min_buffer, config.max_buffer);
      buffer.resize(static_cast<std::size_t>(len), 0);
    }
  }
  // Scalar mutations + length resync.
  int last_buffer = -1;
  for (std::size_t p = 0; p < params.size() && p < out.args.size(); ++p) {
    switch (params[p]) {
      case ValueType::ptr:
        last_buffer = out.args[p].buffer;
        break;
      case ValueType::i64:
        if (p > 0 && params[p - 1] == ValueType::ptr && last_buffer >= 0 &&
            static_cast<std::size_t>(last_buffer) < out.buffers.size()) {
          out.args[p] = Value::from_int(static_cast<std::int64_t>(
              out.buffers[static_cast<std::size_t>(last_buffer)].size()));
        } else if (rng.chance(0.5)) {
          out.args[p] = Value::from_int(out.args[p].i +
                                        rng.uniform(-8, 8));
        }
        break;
      case ValueType::f64:
        if (rng.chance(0.5))
          out.args[p] =
              Value::from_fp(out.args[p].f + rng.uniform_real(-1.0, 1.0));
        break;
    }
  }
  return out;
}

std::vector<CallEnv> generate_environments(const LibraryBinary& library,
                                           std::size_t function_index,
                                           Rng& rng,
                                           const FuzzConfig& config) {
  const Machine machine(library, config.machine);
  const std::vector<ValueType>& params =
      library.functions.at(function_index).param_types;
  const std::vector<std::uint8_t> dictionary =
      byte_dictionary(library.functions.at(function_index));

  struct Scored {
    CallEnv env;
    std::uint64_t coverage = 0;
  };
  std::vector<Scored> pool;

  std::size_t best_index = 0;
  for (std::size_t attempt = 0; attempt < config.attempts; ++attempt) {
    // Coverage feedback: half of the mutations extend the best-covering
    // environment found so far, the rest explore.
    CallEnv candidate;
    if (!pool.empty() && rng.chance(0.6)) {
      const Scored& base =
          rng.chance(0.5) ? pool[best_index] : rng.pick(pool);
      candidate = mutate_env(rng, base.env, params, config, dictionary);
    } else {
      candidate = random_env(rng, params, config);
    }
    FuzzMetrics::get().envs_generated.add();
    const RunResult result = machine.run(function_index, candidate);
    if (result.status != ExecStatus::ok) {
      FuzzMetrics::get().env_crashes.add();
      continue;
    }
    pool.push_back({std::move(candidate),
                    result.features.unique_instructions});
    if (pool.back().coverage > pool[best_index].coverage)
      best_index = pool.size() - 1;
  }

  // Greedy pick: maximise coverage diversity (distinct unique-site counts
  // first, then highest coverage).
  std::sort(pool.begin(), pool.end(), [](const Scored& a, const Scored& b) {
    return a.coverage > b.coverage;
  });
  std::vector<CallEnv> selected;
  std::vector<bool> taken(pool.size(), false);
  std::set<std::uint64_t> seen_coverage;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (selected.size() >= config.env_count) break;
    if (seen_coverage.insert(pool[i].coverage).second) {
      selected.push_back(pool[i].env);
      taken[i] = true;
    }
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (selected.size() >= config.env_count) break;
    if (!taken[i]) selected.push_back(pool[i].env);
  }
  FuzzMetrics::get().envs_selected.add(selected.size());
  return selected;
}

bool validate_candidate(const Machine& machine, std::size_t function_index,
                        const std::vector<CallEnv>& environments,
                        std::size_t* first_crash_env) {
  FuzzMetrics::get().candidates_validated.add();
  for (std::size_t i = 0; i < environments.size(); ++i) {
    const RunResult result = machine.run(function_index, environments[i]);
    if (result.status != ExecStatus::ok) {
      FuzzMetrics::get().candidates_crash_pruned.add();
      if (first_crash_env != nullptr) *first_crash_env = i;
      return false;
    }
  }
  return true;
}

}  // namespace patchecko
