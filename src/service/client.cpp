#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace patchecko::service {

ServiceClient ServiceClient::connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) return ServiceClient();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return ServiceClient();
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return ServiceClient();
  }
  return ServiceClient(fd);
}

ServiceClient ServiceClient::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ServiceClient();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return ServiceClient();
  }
  return ServiceClient(fd);
}

ServiceClient::~ServiceClient() { close(); }

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(other.fd_), reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

void ServiceClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool ServiceClient::send(std::string_view payload) {
  if (fd_ < 0) return false;
  const std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> ServiceClient::receive() {
  if (fd_ < 0) return std::nullopt;
  std::string payload;
  char buffer[4096];
  for (;;) {
    const FrameStatus status = reader_.next(payload);
    if (status == FrameStatus::ok) return payload;
    // The client trusts its own server; an oversized response frame means
    // the connection state is unrecoverable, not that framing should skip.
    if (status == FrameStatus::oversized) {
      close();
      return std::nullopt;
    }
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n == 0) return std::nullopt;
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return std::nullopt;
    }
    reader_.push(buffer, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> ServiceClient::call(std::string_view payload) {
  if (!send(payload)) return std::nullopt;
  return receive();
}

}  // namespace patchecko::service
