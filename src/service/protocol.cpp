#include "service/protocol.h"

#include <algorithm>
#include <cstring>

#include "obs/json.h"

namespace patchecko::service {

namespace obs_json = patchecko::obs::json;

std::string encode_frame(std::string_view payload) {
  const auto size = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kLengthPrefixBytes + payload.size());
  frame.push_back(static_cast<char>((size >> 24) & 0xFF));
  frame.push_back(static_cast<char>((size >> 16) & 0xFF));
  frame.push_back(static_cast<char>((size >> 8) & 0xFF));
  frame.push_back(static_cast<char>(size & 0xFF));
  frame.append(payload);
  return frame;
}

FrameReader::FrameReader(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameReader::push(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

void FrameReader::compact() {
  // Amortized cleanup: drop the consumed prefix once it dominates the
  // buffer, so long-lived sessions don't grow without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

FrameStatus FrameReader::next(std::string& payload,
                              std::uint64_t* dropped_bytes) {
  // Finish discarding an oversized payload before looking for a header.
  if (skip_remaining_ > 0) {
    const std::uint64_t available = buffer_.size() - consumed_;
    const std::uint64_t discard = std::min(skip_remaining_, available);
    consumed_ += static_cast<std::size_t>(discard);
    skip_remaining_ -= discard;
    compact();
  }
  if (skip_pending_report_) {
    // Surface the oversized frame exactly once, as soon as its header was
    // read — the session can answer 413 while the payload still trickles in.
    skip_pending_report_ = false;
    if (dropped_bytes != nullptr) *dropped_bytes = skip_total_;
    return FrameStatus::oversized;
  }
  if (skip_remaining_ > 0) return FrameStatus::need_more;

  if (buffer_.size() - consumed_ < kLengthPrefixBytes)
    return FrameStatus::need_more;
  const auto* head =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const std::uint64_t length = (static_cast<std::uint64_t>(head[0]) << 24) |
                               (static_cast<std::uint64_t>(head[1]) << 16) |
                               (static_cast<std::uint64_t>(head[2]) << 8) |
                               static_cast<std::uint64_t>(head[3]);
  if (length > max_frame_bytes_) {
    consumed_ += kLengthPrefixBytes;
    skip_total_ = length;
    skip_pending_report_ = true;
    skip_remaining_ = length;
    // Re-enter to consume whatever skip bytes are already buffered and
    // report the oversized frame.
    return next(payload, dropped_bytes);
  }
  if (buffer_.size() - consumed_ < kLengthPrefixBytes + length)
    return FrameStatus::need_more;
  payload.assign(buffer_, consumed_ + kLengthPrefixBytes,
                 static_cast<std::size_t>(length));
  consumed_ += kLengthPrefixBytes + static_cast<std::size_t>(length);
  compact();
  return FrameStatus::ok;
}

// --- requests --------------------------------------------------------------

namespace {

bool is_u64(double value) {
  return value >= 0.0 && value == static_cast<double>(
                             static_cast<std::uint64_t>(value));
}

}  // namespace

std::optional<Request> parse_request(std::string_view payload,
                                     std::string* error) {
  const auto doc = obs_json::parse(payload);
  if (!doc) {
    if (error != nullptr) *error = "malformed JSON payload";
    return std::nullopt;
  }
  if (doc->kind() != obs_json::Value::Kind::object) {
    if (error != nullptr) *error = "request must be a JSON object";
    return std::nullopt;
  }
  Request request;
  const obs_json::Value& type = doc->get("type");
  if (type.as_string().empty()) {
    if (error != nullptr) *error = "request is missing a \"type\" string";
    return std::nullopt;
  }
  request.raw_type = type.as_string();
  if (request.raw_type == "scan")
    request.type = RequestType::scan;
  else if (request.raw_type == "status")
    request.type = RequestType::status;
  else if (request.raw_type == "health")
    request.type = RequestType::health;
  else if (request.raw_type == "reload")
    request.type = RequestType::reload;
  else if (request.raw_type == "drain")
    request.type = RequestType::drain;
  else if (request.raw_type == "ping")
    request.type = RequestType::ping;
  else if (request.raw_type == "stats")
    request.type = RequestType::stats;
  else if (request.raw_type == "profile")
    request.type = RequestType::profile;
  else
    request.type = RequestType::unknown;

  if (request.type == RequestType::scan) {
    request.firmware = doc->get("firmware").as_string();
    if (request.firmware.empty()) {
      if (error != nullptr)
        *error = "scan request needs a \"firmware\" path string";
      return std::nullopt;
    }
    const obs_json::Value& cves = doc->get("cves");
    if (!cves.is_null()) {
      if (cves.kind() != obs_json::Value::Kind::array) {
        if (error != nullptr) *error = "\"cves\" must be an array of strings";
        return std::nullopt;
      }
      for (const obs_json::Value& id : cves.as_array()) {
        if (id.kind() != obs_json::Value::Kind::string) {
          if (error != nullptr)
            *error = "\"cves\" must be an array of strings";
          return std::nullopt;
        }
        request.cve_ids.push_back(id.as_string());
      }
    }
    request.want_provenance = doc->get("provenance").as_bool(false);
    const obs_json::Value& id = doc->get("request_id");
    if (!id.is_null()) {
      if (id.kind() != obs_json::Value::Kind::number || !is_u64(id.as_number()) ||
          id.as_number() < 1.0) {
        if (error != nullptr)
          *error = "scan \"request_id\" must be a positive integer";
        return std::nullopt;
      }
      request.request_id = static_cast<std::uint64_t>(id.as_number());
      request.has_request_id = true;
    }
  } else if (request.type == RequestType::status) {
    const obs_json::Value& id = doc->get("request_id");
    if (id.kind() != obs_json::Value::Kind::number ||
        !is_u64(id.as_number())) {
      if (error != nullptr)
        *error = "status request needs a non-negative \"request_id\"";
      return std::nullopt;
    }
    request.request_id = static_cast<std::uint64_t>(id.as_number());
    request.has_request_id = true;
  } else if (request.type == RequestType::reload) {
    const obs_json::Value& scale = doc->get("scale");
    if (!scale.is_null()) {
      if (scale.kind() != obs_json::Value::Kind::number ||
          scale.as_number() <= 0.0) {
        if (error != nullptr) *error = "\"scale\" must be a number > 0";
        return std::nullopt;
      }
      request.scale = scale.as_number();
    }
    const obs_json::Value& seed = doc->get("seed");
    if (!seed.is_null()) {
      if (seed.kind() != obs_json::Value::Kind::number ||
          !is_u64(seed.as_number())) {
        if (error != nullptr)
          *error = "\"seed\" must be a non-negative integer";
        return std::nullopt;
      }
      request.seed = static_cast<std::uint64_t>(seed.as_number());
    }
  } else if (request.type == RequestType::profile) {
    const obs_json::Value& seconds = doc->get("seconds");
    if (!seconds.is_null()) {
      if (seconds.kind() != obs_json::Value::Kind::number ||
          seconds.as_number() <= 0.0 || seconds.as_number() > 300.0) {
        if (error != nullptr)
          *error = "profile \"seconds\" must be a number in (0, 300]";
        return std::nullopt;
      }
      request.profile_seconds = seconds.as_number();
    }
    const obs_json::Value& hz = doc->get("hz");
    if (!hz.is_null()) {
      if (hz.kind() != obs_json::Value::Kind::number ||
          !is_u64(hz.as_number()) || hz.as_number() < 1.0 ||
          hz.as_number() > 10000.0) {
        if (error != nullptr)
          *error = "profile \"hz\" must be an integer in [1, 10000]";
        return std::nullopt;
      }
      request.profile_hz = static_cast<long>(hz.as_number());
    }
  }
  return request;
}

std::string scan_request_json(const std::string& firmware,
                              const std::vector<std::string>& cve_ids,
                              bool want_provenance,
                              std::uint64_t request_id) {
  std::string out = "{\"type\":\"scan\",\"firmware\":";
  obs_json::append_string(out, firmware);
  if (!cve_ids.empty()) {
    out += ",\"cves\":[";
    for (std::size_t i = 0; i < cve_ids.size(); ++i) {
      if (i != 0) out += ',';
      obs_json::append_string(out, cve_ids[i]);
    }
    out += ']';
  }
  if (want_provenance) out += ",\"provenance\":true";
  if (request_id != 0)
    out += ",\"request_id\":" + std::to_string(request_id);
  out += '}';
  return out;
}

std::string status_request_json(std::uint64_t request_id) {
  return "{\"type\":\"status\",\"request_id\":" + std::to_string(request_id) +
         "}";
}

std::string health_request_json() { return "{\"type\":\"health\"}"; }

std::string reload_request_json(std::optional<double> scale,
                                std::optional<std::uint64_t> seed) {
  std::string out = "{\"type\":\"reload\"";
  if (scale.has_value()) {
    out += ",\"scale\":";
    obs_json::append_double(out, *scale);
  }
  if (seed.has_value()) out += ",\"seed\":" + std::to_string(*seed);
  out += '}';
  return out;
}

std::string drain_request_json() { return "{\"type\":\"drain\"}"; }

std::string ping_request_json() { return "{\"type\":\"ping\"}"; }

std::string stats_request_json() { return "{\"type\":\"stats\"}"; }

std::string profile_request_json(double seconds, long hz) {
  std::string out = "{\"type\":\"profile\",\"seconds\":";
  obs_json::append_double(out, seconds);
  out += ",\"hz\":" + std::to_string(hz) + "}";
  return out;
}

// --- responses -------------------------------------------------------------

std::string error_response(int code, std::string_view message,
                           std::uint64_t request_id) {
  std::string out = "{\"type\":\"error\",\"code\":" + std::to_string(code) +
                    ",\"message\":";
  obs_json::append_string(out, message);
  if (request_id != 0)
    out += ",\"request_id\":" + std::to_string(request_id);
  out += '}';
  return out;
}

std::string accepted_response(std::uint64_t request_id,
                              std::size_t queue_depth) {
  return "{\"type\":\"accepted\",\"request_id\":" +
         std::to_string(request_id) +
         ",\"queue_depth\":" + std::to_string(queue_depth) + "}";
}

std::string result_response(const ResultInfo& info) {
  std::string out =
      "{\"type\":\"result\",\"request_id\":" + std::to_string(info.request_id) +
      ",\"status\":\"ok\",\"corpus_version\":" +
      std::to_string(info.corpus_version) +
      ",\"interrupted\":" + (info.interrupted ? "true" : "false") +
      ",\"seconds\":";
  obs_json::append_double(out, info.seconds);
  out += ",\"cache\":{\"hits\":" + std::to_string(info.cache_hits) +
         ",\"misses\":" + std::to_string(info.cache_misses) + "},\"report\":";
  obs_json::append_string(out, info.report);
  out += ",\"summary\":";
  obs_json::append_string(out, info.summary);
  if (!info.provenance.empty()) {
    out += ",\"provenance\":";
    obs_json::append_string(out, info.provenance);
  }
  out += '}';
  return out;
}

std::string profile_response(const ProfileInfo& info) {
  std::string out = "{\"type\":\"profile\",\"seconds\":";
  obs_json::append_double(out, info.seconds);
  out += ",\"hz\":";
  obs_json::append_double(out, info.hz);
  out += ",\"sweeps\":" + std::to_string(info.sweeps) +
         ",\"samples\":" + std::to_string(info.samples) +
         ",\"truncated\":" + std::to_string(info.truncated) +
         std::string(",\"alloc_available\":") +
         (info.alloc_available ? "true" : "false") + ",\"hot\":";
  if (info.hot_path.empty()) {
    out += "null";
  } else {
    out += "{\"path\":";
    obs_json::append_string(out, info.hot_path);
    out += ",\"samples\":" + std::to_string(info.hot_samples) +
           ",\"alloc_bytes\":" + std::to_string(info.hot_alloc_bytes) + "}";
  }
  out += ",\"folded\":";
  obs_json::append_string(out, info.folded);
  out += ",\"top\":";
  obs_json::append_string(out, info.top);
  out += '}';
  return out;
}

std::string status_response(std::uint64_t request_id, std::string_view state) {
  std::string out =
      "{\"type\":\"status\",\"request_id\":" + std::to_string(request_id) +
      ",\"state\":";
  obs_json::append_string(out, state);
  out += '}';
  return out;
}

std::string reloaded_response(std::uint64_t corpus_version, std::size_t cves,
                              double build_seconds) {
  std::string out = "{\"type\":\"reloaded\",\"corpus_version\":" +
                    std::to_string(corpus_version) +
                    ",\"cves\":" + std::to_string(cves) + ",\"build_s\":";
  obs_json::append_double(out, build_seconds);
  out += '}';
  return out;
}

std::string drained_response(std::uint64_t completed) {
  return "{\"type\":\"drained\",\"completed\":" + std::to_string(completed) +
         "}";
}

std::string pong_response() { return "{\"type\":\"pong\"}"; }

}  // namespace patchecko::service
