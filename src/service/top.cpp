#include "service/top.h"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/rollup.h"

namespace patchecko::service {

namespace {

using obs::json::Value;

std::uint64_t as_u64(const Value& value) {
  if (value.kind() != Value::Kind::number) return 0;
  const double number = value.as_number();
  return number > 0.0 ? static_cast<std::uint64_t>(number) : 0;
}

std::string fmt_seconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  return buf;
}

/// Left-pads `text` to `width` columns (right-aligns numeric columns).
void column(std::string& out, const std::string& text, int width) {
  const int pad = width - static_cast<int>(text.size());
  for (int i = 0; i < pad; ++i) out += ' ';
  out += text;
}

/// Smallest bucket bound whose cumulative count reaches `quantile` of the
/// total; the overflow bucket reports the window max instead of +inf.
std::string bucket_quantile(const std::vector<std::uint64_t>& buckets,
                            const std::vector<double>& bounds,
                            std::uint64_t total, double quantile,
                            double max_seconds) {
  if (total == 0) return "-";
  const auto need = static_cast<std::uint64_t>(
      static_cast<double>(total) * quantile + 0.5);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= need && cumulative > 0) {
      if (i < bounds.size()) return "<=" + fmt_seconds(bounds[i]);
      return fmt_seconds(max_seconds);
    }
  }
  return fmt_seconds(max_seconds);
}

}  // namespace

bool validate_stats(const obs::json::Value& stats, std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (stats.kind() != Value::Kind::object)
    return fail("stats response is not a JSON object");
  if (stats.get("type").as_string() != "stats")
    return fail("response \"type\" is not \"stats\"");
  const Value& schema = stats.get("schema_version");
  if (schema.kind() != Value::Kind::number || schema.as_number() < 1.0)
    return fail("stats response is missing \"schema_version\"");
  if (stats.get("uptime_s").kind() != Value::Kind::number)
    return fail("stats response is missing \"uptime_s\"");
  if (stats.get("corpus").kind() != Value::Kind::object)
    return fail("stats response is missing the \"corpus\" block");
  if (stats.get("queue").kind() != Value::Kind::object)
    return fail("stats response is missing the \"queue\" block");
  const Value& rollup = stats.get("rollup");
  if (rollup.kind() != Value::Kind::object)
    return fail("stats response is missing the \"rollup\" block");
  if (rollup.get("le").kind() != Value::Kind::array)
    return fail("rollup block is missing the \"le\" bucket bounds");
  if (rollup.get("endpoints").kind() != Value::Kind::object)
    return fail("rollup block is missing the \"endpoints\" table");
  if (rollup.get("window_s").kind() != Value::Kind::number)
    return fail("rollup block is missing \"window_s\"");
  return true;
}

std::string render_top(const obs::json::Value& stats) {
  const Value& corpus = stats.get("corpus");
  const Value& queue = stats.get("queue");
  const Value& rollup = stats.get("rollup");
  const Value& rollup_queue = rollup.get("queue");

  std::vector<double> bounds;
  for (const Value& bound : rollup.get("le").as_array())
    bounds.push_back(bound.as_number());

  std::string out = "patchecko daemon";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  uptime %.1fs  corpus v%" PRIu64 " (%" PRIu64 " cves)",
                stats.get("uptime_s").as_number(),
                as_u64(corpus.get("version")), as_u64(corpus.get("cves")));
  out += buf;
  const Value& rss = rollup.get("rss_kb");
  if (rss.kind() == Value::Kind::number && rss.as_number() >= 0.0) {
    std::snprintf(buf, sizeof(buf), "  rss %" PRIu64 " kB", as_u64(rss));
    out += buf;
  }
  out += '\n';

  std::snprintf(buf, sizeof(buf),
                "queue  depth %" PRIu64 "/%" PRIu64 "  active %" PRIu64
                "  admitted %" PRIu64 "  rejected %" PRIu64
                "  completed %" PRIu64 "  depth_hwm %" PRIu64 "  wait_hwm %s\n",
                as_u64(queue.get("depth")), as_u64(queue.get("capacity")),
                as_u64(queue.get("active")), as_u64(queue.get("admitted")),
                as_u64(queue.get("rejected")), as_u64(queue.get("completed")),
                as_u64(rollup_queue.get("depth_hwm")),
                fmt_seconds(rollup_queue.get("wait_hwm_s").as_number()).c_str());
  out += buf;

  std::snprintf(buf, sizeof(buf), "window %.0fs\n",
                rollup.get("window_s").as_number());
  out += buf;

  out += "endpoint      count  errors        p50        p90        max"
         "   wait_max     life  life_err\n";
  const Value& endpoints = rollup.get("endpoints");
  for (std::size_t e = 0; e < obs::kEndpointCount; ++e) {
    const std::string name(
        obs::endpoint_name(static_cast<obs::Endpoint>(e)));
    const Value& endpoint = endpoints.get(name);
    const std::uint64_t count = as_u64(endpoint.get("count"));
    const double max_seconds = endpoint.get("max_s").as_number();
    std::vector<std::uint64_t> buckets;
    for (const Value& bucket : endpoint.get("buckets").as_array())
      buckets.push_back(as_u64(bucket));

    out += name;
    for (std::size_t i = name.size(); i < 10; ++i) out += ' ';
    column(out, std::to_string(count), 9);
    column(out, std::to_string(as_u64(endpoint.get("errors"))), 8);
    column(out, bucket_quantile(buckets, bounds, count, 0.50, max_seconds), 11);
    column(out, bucket_quantile(buckets, bounds, count, 0.90, max_seconds), 11);
    column(out, count > 0 ? fmt_seconds(max_seconds) : "-", 11);
    column(out,
           count > 0 ? fmt_seconds(endpoint.get("wait_max_s").as_number())
                     : "-",
           11);
    const Value& total = endpoint.get("total");
    column(out, std::to_string(as_u64(total.get("count"))), 9);
    column(out, std::to_string(as_u64(total.get("errors"))), 10);
    out += '\n';
  }

  // Hot-leaf row from the daemon's last `profile` capture; absent on
  // daemons that predate the profiler block.
  const Value& profile = stats.get("profile");
  if (profile.kind() == Value::Kind::object) {
    std::snprintf(buf, sizeof(buf), "profiler  captures %" PRIu64 "  %s",
                  as_u64(profile.get("captures")),
                  profile.get("running").as_bool(false) ? "capturing"
                                                        : "idle");
    out += buf;
    const Value& last = profile.get("last");
    if (last.kind() == Value::Kind::object) {
      const std::string hot_path = last.get("hot_path").as_string();
      std::snprintf(buf, sizeof(buf),
                    "  hot %s  self %" PRIu64 "/%" PRIu64
                    "  alloc %" PRIu64 " kB",
                    hot_path.empty() ? "-" : hot_path.c_str(),
                    as_u64(last.get("hot_samples")),
                    as_u64(last.get("samples")),
                    as_u64(last.get("hot_alloc_bytes")) / 1024);
      out += buf;
    } else {
      out += "  hot -";
    }
    out += '\n';
  }

  // Prebuilt-store row; present only on store-backed daemons
  // (serve --corpus-dir), so its absence is not an error.
  const Value& store = stats.get("corpus_store");
  if (store.kind() == Value::Kind::object) {
    const std::uint64_t lookups =
        as_u64(store.get("hits")) + as_u64(store.get("misses"));
    std::snprintf(buf, sizeof(buf),
                  "store  entries %" PRIu64 "  %" PRIu64 " kB  gen %" PRIu64
                  "  hits %" PRIu64 "/%" PRIu64 "  stores %" PRIu64 "\n",
                  as_u64(store.get("entries")),
                  as_u64(store.get("bytes")) / 1024,
                  as_u64(store.get("generation")),
                  as_u64(store.get("hits")), lookups,
                  as_u64(store.get("stores")));
    out += buf;
  }
  return out;
}

}  // namespace patchecko::service
