// Admission control for the scan service: a bounded FIFO with backpressure.
//
// Scan requests are admitted only while the queue has room; a full queue
// rejects immediately (the session answers with a 429-style error) instead
// of buffering unboundedly — under fleet-scale load the daemon must shed
// work it cannot schedule, not OOM or silently stretch latency. Dispatcher
// threads block in next() until work arrives or the queue is closed.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "service/protocol.h"

namespace patchecko::service {

/// Thread-safe response writer bound to the submitting session. May be
/// invoked from a dispatcher thread well after admission; implementations
/// swallow write failures (a vanished client must not kill the job).
using RespondFn = std::function<void(const std::string& payload)>;

/// One admitted scan, queued for a dispatcher.
struct PendingScan {
  std::uint64_t id = 0;
  Request request;
  RespondFn respond;
  /// Admission timestamp; the dispatcher derives the access-log queue-wait
  /// from it when the scan finally starts.
  std::chrono::steady_clock::time_point admitted_at{};
  /// Request payload size as read off the wire (access-log bytes_in).
  std::size_t bytes_in = 0;
  /// Running response byte count for this request (accepted frame + result
  /// frame). Shared because the session wrapper that counts writes outlives
  /// the queue entry.
  std::shared_ptr<std::atomic<std::uint64_t>> bytes_out;
};

struct AdmissionStats {
  std::size_t depth = 0;     ///< queued, not yet dispatched
  std::size_t active = 0;    ///< dispatched, still running
  std::size_t capacity = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  /// False when the queue is full or closed (the caller sends the 429/503).
  bool try_admit(PendingScan scan);

  /// Blocks until a scan is available; nullopt once the queue is closed and
  /// empty (dispatcher shutdown).
  std::optional<PendingScan> next();

  /// A dispatched scan finished (success or failure).
  void job_done();

  /// Stops admission and wakes blocked dispatchers; queued scans still
  /// drain through next().
  void close();
  bool closed() const;

  /// Blocks until nothing is queued or running (drain barrier).
  void wait_idle();

  AdmissionStats stats() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable available_;  ///< signals dispatchers
  std::condition_variable idle_;       ///< signals wait_idle
  std::deque<PendingScan> queue_;
  std::size_t active_ = 0;
  bool closed_ = false;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace patchecko::service
