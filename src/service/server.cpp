#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "firmware/firmware.h"
#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/resource.h"

namespace patchecko::service {

namespace obs_json = patchecko::obs::json;

// --- connection ------------------------------------------------------------

/// One accepted socket. Reads happen only on the session thread; writes can
/// come from the session thread (errors, health) *and* dispatcher threads
/// (scan results), so every write serializes on write_mutex and a failed
/// write just marks the connection dead — a vanished client must never take
/// the daemon down with it.
struct ScanService::Connection {
  explicit Connection(int descriptor) : fd(descriptor) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  bool send_frame_locked(std::string_view payload) {
    if (!open.load(std::memory_order_relaxed)) return false;
    const std::string frame = encode_frame(payload);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        open.store(false, std::memory_order_relaxed);
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool send_frame(std::string_view payload) {
    std::lock_guard<std::mutex> lock(write_mutex);
    return send_frame_locked(payload);
  }

  int fd = -1;
  std::mutex write_mutex;
  std::atomic<bool> open{true};
};

// --- listeners -------------------------------------------------------------

namespace {

int make_unix_listener(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("cannot create unix socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a crashed predecessor
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    throw std::runtime_error("cannot bind unix socket " + path);
  }
  return fd;
}

int make_tcp_listener(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("cannot create tcp socket");
  const int yes = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loopback only: the daemon's trust model is "local clients"; exposing
  // the scan API beyond the host is an explicit reverse-proxy decision.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    throw std::runtime_error("cannot bind tcp port " + std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    *bound_port = ntohs(bound.sin_port);
  return fd;
}

/// poll() for readability with a short timeout so loops notice the stop
/// flag; returns false on fatal socket error.
bool wait_readable(int fd, const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc > 0) {
      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return false;
      return true;
    }
  }
  return false;
}

}  // namespace

// --- lifecycle -------------------------------------------------------------

namespace {

obs::RollupConfig rollup_config(const ServiceConfig& config) {
  obs::RollupConfig rollup;
  if (config.stats_window_seconds > 0.0)
    rollup.window_seconds = config.stats_window_seconds;
  return rollup;
}

}  // namespace

ScanService::ScanService(ServiceConfig config)
    : config_(std::move(config)),
      store_(config_.eval, DatabaseConfig{}, config_.snapshot_builder),
      engine_(config_.engine),
      queue_(config_.queue_limit),
      rollup_(rollup_config(config_)) {
  rollup_.set_corpus_version(store_.current()->version);
  if (config_.access_log.enabled) {
    std::string error;
    if (!access_log_.open(config_.access_log.file, &error))
      throw std::runtime_error(error);
  }
}

ScanService::~ScanService() { stop(); }

void ScanService::start() {
  if (started_) return;
  started_ = true;
  if (!config_.socket_path.empty())
    unix_fd_ = make_unix_listener(config_.socket_path);
  if (config_.tcp_port >= 0)
    tcp_listen_fd_ = make_tcp_listener(config_.tcp_port, &tcp_port_);
  if (unix_fd_ < 0 && tcp_listen_fd_ < 0)
    throw std::runtime_error(
        "service needs a listener: set socket_path and/or tcp_port");
  uptime_.restart();
  const unsigned dispatchers = std::max(1u, config_.dispatchers);
  dispatchers_.reserve(dispatchers);
  for (unsigned i = 0; i < dispatchers; ++i)
    dispatchers_.emplace_back([this] { dispatch_loop(); });
  if (unix_fd_ >= 0)
    acceptors_.emplace_back([this] { accept_loop(unix_fd_); });
  if (tcp_listen_fd_ >= 0)
    acceptors_.emplace_back([this] { accept_loop(tcp_listen_fd_); });
  if (config_.stats_out.enabled && !config_.stats_out.file.empty())
    stats_thread_ = std::thread([this] { stats_ticker_loop(); });
}

void ScanService::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // Shed queued work first: dispatchers answer every not-yet-started scan
  // with a structured cancellation, finish what is in flight (the engine's
  // interrupt token, when wired, shortens that), then exit.
  stopping_.store(true, std::memory_order_release);
  cancel_queued_.store(true, std::memory_order_release);
  queue_.close();
  for (std::thread& thread : dispatchers_) thread.join();
  dispatchers_.clear();
  // Stop the stats ticker only after the dispatchers have drained: its
  // final line (written durably below the wait loop) then records the
  // fully settled queue counters.
  {
    std::lock_guard<std::mutex> lock(stats_stop_mutex_);
    stats_stop_ = true;
  }
  stats_stop_cv_.notify_all();
  if (stats_thread_.joinable()) stats_thread_.join();
  for (std::thread& thread : acceptors_) thread.join();
  acceptors_.clear();
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
  unix_fd_ = tcp_listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto& connection : connections_)
      ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (std::thread& thread : sessions_) thread.join();
  sessions_.clear();
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    connections_.clear();
  }
  // Every response is on the wire and every access line appended; make the
  // log durable before the process can exit (SIGINT/SIGTERM land here via
  // the serve loop's graceful-shutdown path).
  access_log_.flush_sync();
  if (!config_.socket_path.empty()) ::unlink(config_.socket_path.c_str());
}

std::shared_ptr<const CorpusSnapshot> ScanService::reload(
    std::optional<double> scale, std::optional<std::uint64_t> seed) {
  EvalConfig eval = store_.current()->eval;
  if (scale.has_value()) eval.scale = *scale;
  if (seed.has_value()) eval.seed = *seed;
  auto snapshot = store_.reload(eval);
  rollup_.set_corpus_version(snapshot->version);
  return snapshot;
}

// --- request registry ------------------------------------------------------

void ScanService::set_state(std::uint64_t id, const char* state) {
  std::lock_guard<std::mutex> lock(states_mutex_);
  states_[id] = state;
}

std::optional<std::string> ScanService::state_of(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(states_mutex_);
  const auto it = states_.find(id);
  if (it == states_.end()) return std::nullopt;
  return it->second;
}

// --- sessions --------------------------------------------------------------

void ScanService::accept_loop(int listen_fd) {
  while (wait_readable(listen_fd, stopping_)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    auto connection = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      // Raced with stop(): the session table is being torn down.
      continue;
    }
    connections_.push_back(connection);
    sessions_.emplace_back(
        [this, connection] { session_loop(connection); });
  }
}

void ScanService::session_loop(std::shared_ptr<Connection> connection) {
  FrameReader reader(config_.max_frame_bytes);
  char buffer[4096];
  while (wait_readable(connection->fd, stopping_)) {
    const ssize_t n = ::read(connection->fd, buffer, sizeof(buffer));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    reader.push(buffer, static_cast<std::size_t>(n));
    std::string payload;
    for (;;) {
      std::uint64_t dropped = 0;
      const FrameStatus status = reader.next(payload, &dropped);
      if (status == FrameStatus::need_more) break;
      if (status == FrameStatus::oversized) {
        // The reader discards the payload as it trickles in, so framing —
        // and the connection — survive; the client just gets told.
        connection->send_frame(error_response(
            413, "frame of " + std::to_string(dropped) +
                     " bytes exceeds max_frame_bytes " +
                     std::to_string(config_.max_frame_bytes)));
        continue;
      }
      handle_payload(connection, payload);
    }
  }
  // A session that exits because the service is stopping must leave the
  // connection writable: dispatchers still owe in-flight results and
  // queued-scan cancellations, and stop() closes the fd only after those
  // are on the wire. Only a real peer disconnect marks the link dead.
  if (!stopping_.load(std::memory_order_acquire))
    connection->open.store(false, std::memory_order_relaxed);
}

void ScanService::handle_payload(
    const std::shared_ptr<Connection>& connection, std::string_view payload) {
  const Stopwatch watch;
  // Synchronous endpoints share one completion path: send the response,
  // then record it (rollup + access log, in that order — the log line must
  // never precede the frame it describes). Scans return before `done` and
  // account for themselves from the dispatcher.
  AccessEntry entry;
  entry.bytes_in = payload.size();
  entry.corpus_version = store_.current()->version;
  const auto done = [&](std::string_view op, int status,
                        std::string_view outcome,
                        const std::string& response) {
    connection->send_frame(response);
    entry.op = op;
    entry.status = status;
    entry.outcome = outcome;
    entry.service_s = watch.elapsed_seconds();
    entry.bytes_out = response.size() + kLengthPrefixBytes;
    finish_request(entry);
  };

  std::string parse_error;
  std::optional<Request> request = parse_request(payload, &parse_error);
  if (!request) {
    done("other", 400, "error", error_response(400, parse_error));
    return;
  }
  switch (request->type) {
    case RequestType::scan:
      handle_scan(connection, std::move(*request), payload.size());
      return;
    case RequestType::status: {
      entry.id = request->request_id;
      const std::optional<std::string> state = state_of(request->request_id);
      if (!state) {
        done("status", 404, "error",
             error_response(404, "unknown request_id", request->request_id));
        return;
      }
      done("status", 200, "ok",
           status_response(request->request_id, *state));
      return;
    }
    case RequestType::health:
      done("health", 200, "ok", health_json());
      return;
    case RequestType::stats:
      done("stats", 200, "ok", stats_json());
      return;
    case RequestType::reload: {
      const auto snapshot = reload(request->scale, request->seed);
      entry.corpus_version = snapshot->version;
      done("reload", 200, "ok",
           reloaded_response(snapshot->version,
                             snapshot->database.entries().size(),
                             watch.elapsed_seconds()));
      return;
    }
    case RequestType::drain: {
      // Block this session until every admitted scan has finished; the
      // response *is* the drain barrier, so a client that sees "drained"
      // knows the queue is empty.
      draining_.store(true, std::memory_order_release);
      queue_.wait_idle();
      const std::string response = drained_response(queue_.stats().completed);
      done("drain", 200, "ok", response);
      drained_.store(true, std::memory_order_release);
      return;
    }
    case RequestType::ping:
      done("ping", 200, "ok", pong_response());
      return;
    case RequestType::profile: {
      // Start/stop is guarded by the profiler itself: a second capture
      // while one runs — from this or any other connection — answers 409
      // instead of silently sharing (and then truncating) the first.
      obs::Profiler::Config profiler_config;
      profiler_config.hz = static_cast<double>(request->profile_hz);
      if (!obs::Profiler::global().start(profiler_config)) {
        done("profile", 409, "error",
             error_response(409, "a profile capture is already running"));
        return;
      }
      // The capture blocks this session (like drain); sliced sleeps keep
      // stop() from waiting out a long capture during shutdown.
      double remaining = request->profile_seconds;
      while (remaining > 0.0 &&
             !stopping_.load(std::memory_order_acquire)) {
        const double slice = std::min(remaining, 0.05);
        std::this_thread::sleep_for(std::chrono::duration<double>(slice));
        remaining -= slice;
      }
      const obs::ProfileReport report = obs::Profiler::global().stop();
      ProfileInfo info;
      info.seconds = request->profile_seconds;
      info.hz = report.hz;
      info.sweeps = report.sweeps;
      info.samples = report.samples;
      info.truncated = report.truncated;
      info.alloc_available = report.alloc_available;
      info.folded = obs::folded_stacks(report);
      info.top = obs::profile_top_table(report);
      const obs::CaptureSummary summary = obs::summarize_profile(report);
      info.hot_path = summary.hot_path;
      info.hot_samples = summary.hot_samples;
      info.hot_alloc_bytes = summary.hot_alloc_bytes;
      done("profile", 200, "ok", profile_response(info));
      return;
    }
    case RequestType::unknown:
      done("other", 400, "error",
           error_response(400, "unknown request type '" + request->raw_type +
                                   "'"));
      return;
  }
}

void ScanService::handle_scan(const std::shared_ptr<Connection>& connection,
                              Request request, std::size_t bytes_in) {
  const Stopwatch watch;
  AccessEntry entry;
  entry.op = "scan";
  entry.bytes_in = bytes_in;
  entry.corpus_version = store_.current()->version;
  const auto reject = [&](std::uint64_t id, int status,
                          std::string_view outcome,
                          const std::string& response, bool locked) {
    const bool sent = locked ? connection->send_frame_locked(response)
                             : connection->send_frame(response);
    entry.id = id;
    entry.status = status;
    entry.outcome = outcome;
    entry.service_s = watch.elapsed_seconds();
    entry.bytes_out = sent ? response.size() + kLengthPrefixBytes : 0;
    finish_request(entry);
  };

  if (draining_.load(std::memory_order_acquire) ||
      stopping_.load(std::memory_order_acquire)) {
    reject(request.has_request_id ? request.request_id : 0, 503, "rejected",
           error_response(503, "service is draining"), /*locked=*/false);
    return;
  }

  std::uint64_t id = 0;
  if (request.has_request_id) {
    // Client-named scan: the id must be fresh. Claim it in the state table
    // atomically, then bump the generator past it so auto-assigned ids can
    // never collide with it later.
    id = request.request_id;
    bool duplicate = false;
    {
      std::lock_guard<std::mutex> states_lock(states_mutex_);
      duplicate = !states_.emplace(id, "queued").second;
    }
    if (duplicate) {
      reject(id, 409, "error",
             error_response(409,
                            "request_id " + std::to_string(id) +
                                " is already in use",
                            id),
             /*locked=*/false);
      return;
    }
    std::uint64_t expected = next_request_id_.load(std::memory_order_relaxed);
    while (expected <= id &&
           !next_request_id_.compare_exchange_weak(
               expected, id + 1, std::memory_order_relaxed)) {
    }
  } else {
    id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    set_state(id, "queued");
  }
  PendingScan scan;
  scan.id = id;
  scan.request = std::move(request);
  scan.admitted_at = std::chrono::steady_clock::now();
  scan.bytes_in = bytes_in;
  scan.bytes_out = std::make_shared<std::atomic<std::uint64_t>>(0);
  std::weak_ptr<Connection> weak = connection;
  const auto bytes_out = scan.bytes_out;
  scan.respond = [weak, bytes_out](const std::string& payload) {
    if (const auto connection = weak.lock()) {
      if (connection->send_frame(payload))
        bytes_out->fetch_add(payload.size() + kLengthPrefixBytes,
                             std::memory_order_relaxed);
    }
  };
  // The accepted frame must hit the wire before the result frame, and the
  // dispatcher may finish arbitrarily fast — admit and acknowledge under
  // the connection's write lock so the two cannot reorder.
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  if (!queue_.try_admit(std::move(scan))) {
    {
      std::lock_guard<std::mutex> states_lock(states_mutex_);
      states_.erase(id);
    }
    reject(id, 429, "rejected",
           error_response(429, "scan queue is full (limit " +
                                   std::to_string(config_.queue_limit) + ")"),
           /*locked=*/true);
    return;
  }
  const std::string accepted = accepted_response(id, queue_.stats().depth);
  if (connection->send_frame_locked(accepted))
    bytes_out->fetch_add(accepted.size() + kLengthPrefixBytes,
                         std::memory_order_relaxed);
  rollup_.observe_queue_depth(
      static_cast<std::int64_t>(queue_.stats().depth));
}

// --- dispatch --------------------------------------------------------------

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

void ScanService::dispatch_loop() {
  while (auto scan = queue_.next()) {
    if (cancel_queued_.load(std::memory_order_acquire)) {
      set_state(scan->id, "cancelled");
      scan->respond(error_response(503, "scan cancelled: service shutting down",
                                   scan->id));
      AccessEntry entry;
      entry.id = scan->id;
      entry.op = "scan";
      entry.status = 503;
      entry.outcome = "cancelled";
      entry.queue_wait_s = seconds_since(scan->admitted_at);
      entry.corpus_version = store_.current()->version;
      entry.bytes_in = scan->bytes_in;
      if (scan->bytes_out)
        entry.bytes_out = scan->bytes_out->load(std::memory_order_relaxed);
      finish_request(entry);
    } else {
      run_scan(*scan);
    }
    queue_.job_done();
  }
}

void ScanService::run_scan(const PendingScan& scan) {
  // Queue wait ends — and service time starts — the moment a dispatcher
  // picks the scan up; the --scan-delay test hook counts as service time.
  const double queue_wait = seconds_since(scan.admitted_at);
  const Stopwatch service_watch;
  set_state(scan.id, "running");
  if (config_.scan_delay_seconds > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(
        config_.scan_delay_seconds));

  // Capture the corpus generation up front: a reload that lands mid-scan
  // swaps the store pointer, but this shared_ptr keeps our generation
  // alive until the report is out the door.
  const std::shared_ptr<const CorpusSnapshot> snapshot = store_.current();

  AccessEntry entry;
  entry.id = scan.id;
  entry.op = "scan";
  entry.queue_wait_s = queue_wait;
  entry.corpus_version = snapshot->version;
  entry.bytes_in = scan.bytes_in;
  const auto finish = [&](int status, std::string_view outcome) {
    entry.status = status;
    entry.outcome = outcome;
    entry.service_s = service_watch.elapsed_seconds();
    if (scan.bytes_out)
      entry.bytes_out = scan.bytes_out->load(std::memory_order_relaxed);
    finish_request(entry);
  };

  const auto image = load_firmware(scan.request.firmware);
  if (!image) {
    set_state(scan.id, "failed");
    scan.respond(error_response(
        400, "cannot load firmware image '" + scan.request.firmware + "'",
        scan.id));
    finish(400, "error");
    return;
  }

  // Every request gets a heartbeat: silent (sampled only, for the health
  // endpoint) unless --heartbeat asked for per-request JSONL files.
  obs::HeartbeatConfig heartbeat_config;
  heartbeat_config.write_lines = config_.heartbeat.enabled;
  heartbeat_config.interval_seconds =
      config_.heartbeat.enabled ? config_.heartbeat.interval_seconds : 0.0;
  if (config_.heartbeat.enabled && !config_.heartbeat.file.empty())
    heartbeat_config.file =
        cli::indexed_output_file(config_.heartbeat.file, scan.id);
  auto heartbeat = std::make_shared<obs::Heartbeat>(heartbeat_config);
  {
    std::lock_guard<std::mutex> lock(heartbeat_mutex_);
    latest_heartbeat_ = heartbeat;
    latest_heartbeat_request_ = scan.id;
    latest_heartbeat_corpus_ = snapshot->version;
  }

  ScanRequest request;
  request.model = config_.model;
  request.firmware = &*image;
  request.database = &snapshot->database;
  request.cve_ids = scan.request.cve_ids;
  request.heartbeat = heartbeat.get();
  request.query_codes = &snapshot->queries;
  request.request_id = scan.id;

  ScanReport report;
  try {
    report = engine_.run(request);
  } catch (const std::exception& error) {
    set_state(scan.id, "failed");
    scan.respond(error_response(500, error.what(), scan.id));
    finish(500, "error");
    return;
  }

  if (config_.events.enabled && !config_.events.file.empty()) {
    const std::string path =
        cli::indexed_output_file(config_.events.file, scan.id);
    std::ofstream out(path, std::ios::trunc);
    out << report.provenance_jsonl();
    // The event ring is shared by every in-flight scan; the request scope
    // stamped each event with its owner, so this file gets only its own.
    for (const obs::Event& event : obs::EventLog::global().events())
      if (event.request == scan.id)
        out << obs::event_jsonl_line(event) << "\n";
    if (!out.good())
      std::fprintf(stderr, "serve: cannot write events to %s\n", path.c_str());
  }

  ResultInfo info;
  info.request_id = scan.id;
  info.corpus_version = snapshot->version;
  info.interrupted = report.interrupted;
  info.seconds = report.total_seconds;
  info.cache_hits = report.cache.hits();
  info.cache_misses = report.cache.misses();
  info.report = report.canonical_text();
  info.summary = report.summary_text();
  if (scan.request.want_provenance) info.provenance = report.provenance_jsonl();

  entry.cache_hits = info.cache_hits;
  entry.cache_misses = info.cache_misses;
  entry.has_cache = true;
  // Verify-mode prefilter recall, aggregated over both scan directions of
  // every result: recalled / exact-candidate counts. Null (absent samples)
  // when the prefilter never ran in verify mode.
  std::uint64_t exact = 0;
  std::uint64_t recalled = 0;
  for (const CveScanResult& result : report.results) {
    exact += result.from_vulnerable.prefilter_exact_candidates;
    recalled += result.from_vulnerable.prefilter_recalled;
    exact += result.from_patched.prefilter_exact_candidates;
    recalled += result.from_patched.prefilter_recalled;
  }
  if (exact > 0) {
    entry.prefilter_recall =
        static_cast<double>(recalled) / static_cast<double>(exact);
    entry.has_prefilter_recall = true;
  }

  // State before response: a client that just read its result may query
  // status immediately and must not still see "running".
  set_state(scan.id, report.interrupted ? "interrupted" : "done");
  scan.respond(result_response(info));
  finish(200, report.interrupted ? "interrupted" : "ok");
}

// --- health ----------------------------------------------------------------

ServiceHealth ScanService::health() const {
  ServiceHealth health;
  health.uptime_seconds = uptime_.elapsed_seconds();
  const auto snapshot = store_.current();
  health.corpus_version = snapshot->version;
  health.corpus_cves = snapshot->database.entries().size();
  health.draining = draining_.load(std::memory_order_acquire);
  health.queue = queue_.stats();
  health.cache = engine_.cache().stats();
  health.retrieval_query_codes = snapshot->queries.entries.size();
  health.retrieval_query_build_seconds = snapshot->queries.build_seconds;
  // Index builds happen inside engine analyze jobs; the registry counters
  // are the process-lifetime totals (zero while obs is disabled).
  obs::Registry& registry = obs::Registry::global();
  health.retrieval_index_builds =
      registry.counter("retrieval.index_builds").value();
  health.retrieval_index_vectors =
      registry.counter("retrieval.index_vectors").value();
  health.retrieval_index_build_seconds =
      registry.histogram("retrieval.index_build_seconds").sum();
  return health;
}

std::string ScanService::health_json() const {
  const ServiceHealth health = this->health();
  std::string out = "{\"type\":\"health\",\"uptime_s\":";
  obs_json::append_double(out, health.uptime_seconds);
  out += ",\"corpus\":{\"version\":" + std::to_string(health.corpus_version) +
         ",\"cves\":" + std::to_string(health.corpus_cves) + "}";
  out += std::string(",\"draining\":") + (health.draining ? "true" : "false");
  out += ",\"queue\":{\"depth\":" + std::to_string(health.queue.depth) +
         ",\"active\":" + std::to_string(health.queue.active) +
         ",\"capacity\":" + std::to_string(health.queue.capacity) +
         ",\"admitted\":" + std::to_string(health.queue.admitted) +
         ",\"rejected\":" + std::to_string(health.queue.rejected) +
         ",\"completed\":" + std::to_string(health.queue.completed) + "}";
  const std::uint64_t hits = health.cache.hits();
  const std::uint64_t misses = health.cache.misses();
  const std::uint64_t lookups = hits + misses;
  out += ",\"cache\":{\"hits\":" + std::to_string(hits) +
         ",\"misses\":" + std::to_string(misses) +
         ",\"stores\":" + std::to_string(health.cache.stores) +
         ",\"hit_ratio\":";
  obs_json::append_double(
      out, lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups));
  out += "}";
  std::optional<obs::HealthSnapshot> heartbeat;
  std::uint64_t heartbeat_request = 0;
  std::uint64_t heartbeat_corpus = 0;
  {
    std::lock_guard<std::mutex> lock(heartbeat_mutex_);
    if (latest_heartbeat_) {
      heartbeat = latest_heartbeat_->last_snapshot();
      heartbeat_request = latest_heartbeat_request_;
      heartbeat_corpus = latest_heartbeat_corpus_;
    }
  }
  // The heartbeat block names the request it belongs to (and the corpus
  // generation that request captured): a multiplexed daemon's "latest
  // heartbeat" is meaningless without knowing *whose* heartbeat it is.
  out += ",\"heartbeat\":";
  if (heartbeat) {
    out += "{\"request_id\":" + std::to_string(heartbeat_request) +
           ",\"corpus_version\":" + std::to_string(heartbeat_corpus) +
           ",\"snapshot\":" +
           obs::health_snapshot_jsonl(*heartbeat, /*include_process=*/false) +
           "}";
  } else {
    out += "null";
  }
  out += ",\"retrieval\":{\"query_codes\":" +
         std::to_string(health.retrieval_query_codes) +
         ",\"query_build_s\":";
  obs_json::append_double(out, health.retrieval_query_build_seconds);
  out += ",\"index_builds\":" + std::to_string(health.retrieval_index_builds) +
         ",\"index_vectors\":" +
         std::to_string(health.retrieval_index_vectors) +
         ",\"index_build_s\":";
  obs_json::append_double(out, health.retrieval_index_build_seconds);
  out += "}";
  // Present only when serve runs store-backed (--corpus-dir): the provider
  // renders the prebuilt store's stats object.
  if (config_.corpus_store_stats_json)
    out += ",\"corpus_store\":" + config_.corpus_store_stats_json();
  out += ",\"process\":{\"rss_kb\":" + std::to_string(obs::process_rss_kb()) +
         ",\"peak_rss_kb\":" + std::to_string(obs::process_peak_rss_kb()) +
         "}}";
  return out;
}

// --- stats -----------------------------------------------------------------

std::string ScanService::stats_json() const {
  const auto snapshot = store_.current();
  const AdmissionStats queue = queue_.stats();
  std::string out = "{\"type\":\"stats\",\"schema_version\":1,\"uptime_s\":";
  obs_json::append_double(out, uptime_.elapsed_seconds());
  out += ",\"corpus\":{\"version\":" + std::to_string(snapshot->version) +
         ",\"cves\":" + std::to_string(snapshot->database.entries().size()) +
         "}";
  out += ",\"queue\":{\"depth\":" + std::to_string(queue.depth) +
         ",\"active\":" + std::to_string(queue.active) +
         ",\"capacity\":" + std::to_string(queue.capacity) +
         ",\"admitted\":" + std::to_string(queue.admitted) +
         ",\"rejected\":" + std::to_string(queue.rejected) +
         ",\"completed\":" + std::to_string(queue.completed) + "}";
  out += ",\"rollup\":" + obs::rollup_snapshot_json(rollup_.snapshot());
  // The profiler block feeds `patchecko top`'s hot-leaf row: capture count,
  // whether one is running right now, and the hottest leaf of the last
  // completed capture (null until the first `profile` request finishes).
  obs::Profiler& profiler = obs::Profiler::global();
  out += ",\"profile\":{\"captures\":" + std::to_string(profiler.captures()) +
         std::string(",\"running\":") +
         (profiler.running() ? "true" : "false") + ",\"last\":";
  if (const auto summary = profiler.last_capture()) {
    out += "{\"hot_path\":";
    obs_json::append_string(out, summary->hot_path);
    out += ",\"hot_samples\":" + std::to_string(summary->hot_samples) +
           ",\"hot_alloc_bytes\":" +
           std::to_string(summary->hot_alloc_bytes) +
           ",\"samples\":" + std::to_string(summary->samples) +
           ",\"sweeps\":" + std::to_string(summary->sweeps) +
           ",\"duration_s\":";
    obs_json::append_double(out, summary->duration_seconds);
    out += ",\"hz\":";
    obs_json::append_double(out, summary->hz);
    out += "}";
  } else {
    out += "null";
  }
  out += "}";
  if (config_.corpus_store_stats_json)
    out += ",\"corpus_store\":" + config_.corpus_store_stats_json();
  out += "}";
  return out;
}

void ScanService::finish_request(const AccessEntry& entry) {
  rollup_.record(obs::endpoint_from_name(entry.op), entry.service_s,
                 entry.queue_wait_s, entry.status >= 400);
  access_log_.append(entry);
}

void ScanService::stats_ticker_loop() {
  std::FILE* out = std::fopen(config_.stats_out.file.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "serve: cannot open stats dump %s\n",
                 config_.stats_out.file.c_str());
    return;
  }
  // One line immediately (so even a short-lived daemon leaves a record),
  // then one per interval until stop().
  for (;;) {
    const std::string line = stats_json();
    std::fwrite(line.data(), 1, line.size(), out);
    std::fputc('\n', out);
    std::fflush(out);
    std::unique_lock<std::mutex> lock(stats_stop_mutex_);
    const bool stopped = stats_stop_cv_.wait_for(
        lock,
        std::chrono::duration<double>(config_.stats_out.interval_seconds),
        [this] { return stats_stop_; });
    if (stopped) break;
  }
  // Final tick after stop() has drained the dispatchers, then make the
  // dump durable: a killed daemon's last line must reflect the settled
  // queue, not whatever the last interval happened to catch.
  const std::string line = stats_json();
  std::fwrite(line.data(), 1, line.size(), out);
  std::fputc('\n', out);
  std::fflush(out);
  ::fsync(::fileno(out));
  std::fclose(out);
}

}  // namespace patchecko::service
