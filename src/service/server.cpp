#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "firmware/firmware.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/resource.h"

namespace patchecko::service {

namespace obs_json = patchecko::obs::json;

// --- connection ------------------------------------------------------------

/// One accepted socket. Reads happen only on the session thread; writes can
/// come from the session thread (errors, health) *and* dispatcher threads
/// (scan results), so every write serializes on write_mutex and a failed
/// write just marks the connection dead — a vanished client must never take
/// the daemon down with it.
struct ScanService::Connection {
  explicit Connection(int descriptor) : fd(descriptor) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  bool send_frame_locked(std::string_view payload) {
    if (!open.load(std::memory_order_relaxed)) return false;
    const std::string frame = encode_frame(payload);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        open.store(false, std::memory_order_relaxed);
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool send_frame(std::string_view payload) {
    std::lock_guard<std::mutex> lock(write_mutex);
    return send_frame_locked(payload);
  }

  int fd = -1;
  std::mutex write_mutex;
  std::atomic<bool> open{true};
};

// --- listeners -------------------------------------------------------------

namespace {

int make_unix_listener(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("cannot create unix socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a crashed predecessor
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    throw std::runtime_error("cannot bind unix socket " + path);
  }
  return fd;
}

int make_tcp_listener(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("cannot create tcp socket");
  const int yes = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loopback only: the daemon's trust model is "local clients"; exposing
  // the scan API beyond the host is an explicit reverse-proxy decision.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    throw std::runtime_error("cannot bind tcp port " + std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    *bound_port = ntohs(bound.sin_port);
  return fd;
}

/// poll() for readability with a short timeout so loops notice the stop
/// flag; returns false on fatal socket error.
bool wait_readable(int fd, const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc > 0) {
      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return false;
      return true;
    }
  }
  return false;
}

}  // namespace

// --- lifecycle -------------------------------------------------------------

ScanService::ScanService(ServiceConfig config)
    : config_(std::move(config)),
      store_(config_.eval),
      engine_(config_.engine),
      queue_(config_.queue_limit) {}

ScanService::~ScanService() { stop(); }

void ScanService::start() {
  if (started_) return;
  started_ = true;
  if (!config_.socket_path.empty())
    unix_fd_ = make_unix_listener(config_.socket_path);
  if (config_.tcp_port >= 0)
    tcp_listen_fd_ = make_tcp_listener(config_.tcp_port, &tcp_port_);
  if (unix_fd_ < 0 && tcp_listen_fd_ < 0)
    throw std::runtime_error(
        "service needs a listener: set socket_path and/or tcp_port");
  uptime_.restart();
  const unsigned dispatchers = std::max(1u, config_.dispatchers);
  dispatchers_.reserve(dispatchers);
  for (unsigned i = 0; i < dispatchers; ++i)
    dispatchers_.emplace_back([this] { dispatch_loop(); });
  if (unix_fd_ >= 0)
    acceptors_.emplace_back([this] { accept_loop(unix_fd_); });
  if (tcp_listen_fd_ >= 0)
    acceptors_.emplace_back([this] { accept_loop(tcp_listen_fd_); });
}

void ScanService::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // Shed queued work first: dispatchers answer every not-yet-started scan
  // with a structured cancellation, finish what is in flight (the engine's
  // interrupt token, when wired, shortens that), then exit.
  stopping_.store(true, std::memory_order_release);
  cancel_queued_.store(true, std::memory_order_release);
  queue_.close();
  for (std::thread& thread : dispatchers_) thread.join();
  dispatchers_.clear();
  for (std::thread& thread : acceptors_) thread.join();
  acceptors_.clear();
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
  unix_fd_ = tcp_listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto& connection : connections_)
      ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (std::thread& thread : sessions_) thread.join();
  sessions_.clear();
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    connections_.clear();
  }
  if (!config_.socket_path.empty()) ::unlink(config_.socket_path.c_str());
}

std::shared_ptr<const CorpusSnapshot> ScanService::reload(
    std::optional<double> scale, std::optional<std::uint64_t> seed) {
  EvalConfig eval = store_.current()->eval;
  if (scale.has_value()) eval.scale = *scale;
  if (seed.has_value()) eval.seed = *seed;
  return store_.reload(eval);
}

// --- request registry ------------------------------------------------------

void ScanService::set_state(std::uint64_t id, const char* state) {
  std::lock_guard<std::mutex> lock(states_mutex_);
  states_[id] = state;
}

std::optional<std::string> ScanService::state_of(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(states_mutex_);
  const auto it = states_.find(id);
  if (it == states_.end()) return std::nullopt;
  return it->second;
}

// --- sessions --------------------------------------------------------------

void ScanService::accept_loop(int listen_fd) {
  while (wait_readable(listen_fd, stopping_)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    auto connection = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      // Raced with stop(): the session table is being torn down.
      continue;
    }
    connections_.push_back(connection);
    sessions_.emplace_back(
        [this, connection] { session_loop(connection); });
  }
}

void ScanService::session_loop(std::shared_ptr<Connection> connection) {
  FrameReader reader(config_.max_frame_bytes);
  char buffer[4096];
  while (wait_readable(connection->fd, stopping_)) {
    const ssize_t n = ::read(connection->fd, buffer, sizeof(buffer));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    reader.push(buffer, static_cast<std::size_t>(n));
    std::string payload;
    for (;;) {
      std::uint64_t dropped = 0;
      const FrameStatus status = reader.next(payload, &dropped);
      if (status == FrameStatus::need_more) break;
      if (status == FrameStatus::oversized) {
        // The reader discards the payload as it trickles in, so framing —
        // and the connection — survive; the client just gets told.
        connection->send_frame(error_response(
            413, "frame of " + std::to_string(dropped) +
                     " bytes exceeds max_frame_bytes " +
                     std::to_string(config_.max_frame_bytes)));
        continue;
      }
      handle_payload(connection, payload);
    }
  }
  // A session that exits because the service is stopping must leave the
  // connection writable: dispatchers still owe in-flight results and
  // queued-scan cancellations, and stop() closes the fd only after those
  // are on the wire. Only a real peer disconnect marks the link dead.
  if (!stopping_.load(std::memory_order_acquire))
    connection->open.store(false, std::memory_order_relaxed);
}

void ScanService::handle_payload(
    const std::shared_ptr<Connection>& connection, std::string_view payload) {
  std::string parse_error;
  std::optional<Request> request = parse_request(payload, &parse_error);
  if (!request) {
    connection->send_frame(error_response(400, parse_error));
    return;
  }
  switch (request->type) {
    case RequestType::scan:
      handle_scan(connection, std::move(*request));
      return;
    case RequestType::status: {
      const std::optional<std::string> state = state_of(request->request_id);
      if (!state) {
        connection->send_frame(error_response(404, "unknown request_id",
                                              request->request_id));
        return;
      }
      connection->send_frame(status_response(request->request_id, *state));
      return;
    }
    case RequestType::health:
      connection->send_frame(health_json());
      return;
    case RequestType::reload: {
      const Stopwatch watch;
      const auto snapshot = reload(request->scale, request->seed);
      connection->send_frame(reloaded_response(
          snapshot->version, snapshot->database.entries().size(),
          watch.elapsed_seconds()));
      return;
    }
    case RequestType::drain: {
      // Block this session until every admitted scan has finished; the
      // response *is* the drain barrier, so a client that sees "drained"
      // knows the queue is empty.
      draining_.store(true, std::memory_order_release);
      queue_.wait_idle();
      connection->send_frame(drained_response(queue_.stats().completed));
      drained_.store(true, std::memory_order_release);
      return;
    }
    case RequestType::ping:
      connection->send_frame(pong_response());
      return;
    case RequestType::unknown:
      connection->send_frame(error_response(
          400, "unknown request type '" + request->raw_type + "'"));
      return;
  }
}

void ScanService::handle_scan(const std::shared_ptr<Connection>& connection,
                              Request request) {
  if (draining_.load(std::memory_order_acquire) ||
      stopping_.load(std::memory_order_acquire)) {
    connection->send_frame(error_response(503, "service is draining"));
    return;
  }
  const std::uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  set_state(id, "queued");
  PendingScan scan;
  scan.id = id;
  scan.request = std::move(request);
  std::weak_ptr<Connection> weak = connection;
  scan.respond = [weak](const std::string& payload) {
    if (const auto connection = weak.lock()) connection->send_frame(payload);
  };
  // The accepted frame must hit the wire before the result frame, and the
  // dispatcher may finish arbitrarily fast — admit and acknowledge under
  // the connection's write lock so the two cannot reorder.
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  if (!queue_.try_admit(std::move(scan))) {
    {
      std::lock_guard<std::mutex> states_lock(states_mutex_);
      states_.erase(id);
    }
    connection->send_frame_locked(
        error_response(429, "scan queue is full (limit " +
                                std::to_string(config_.queue_limit) + ")"));
    return;
  }
  connection->send_frame_locked(
      accepted_response(id, queue_.stats().depth));
}

// --- dispatch --------------------------------------------------------------

void ScanService::dispatch_loop() {
  while (auto scan = queue_.next()) {
    if (cancel_queued_.load(std::memory_order_acquire)) {
      set_state(scan->id, "cancelled");
      scan->respond(error_response(503, "scan cancelled: service shutting down",
                                   scan->id));
    } else {
      run_scan(*scan);
    }
    queue_.job_done();
  }
}

void ScanService::run_scan(const PendingScan& scan) {
  set_state(scan.id, "running");
  if (config_.scan_delay_seconds > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(
        config_.scan_delay_seconds));

  // Capture the corpus generation up front: a reload that lands mid-scan
  // swaps the store pointer, but this shared_ptr keeps our generation
  // alive until the report is out the door.
  const std::shared_ptr<const CorpusSnapshot> snapshot = store_.current();
  const auto image = load_firmware(scan.request.firmware);
  if (!image) {
    set_state(scan.id, "failed");
    scan.respond(error_response(
        400, "cannot load firmware image '" + scan.request.firmware + "'",
        scan.id));
    return;
  }

  // Every request gets a heartbeat: silent (sampled only, for the health
  // endpoint) unless --heartbeat asked for per-request JSONL files.
  obs::HeartbeatConfig heartbeat_config;
  heartbeat_config.write_lines = config_.heartbeat.enabled;
  heartbeat_config.interval_seconds =
      config_.heartbeat.enabled ? config_.heartbeat.interval_seconds : 0.0;
  if (config_.heartbeat.enabled && !config_.heartbeat.file.empty())
    heartbeat_config.file =
        cli::indexed_output_file(config_.heartbeat.file, scan.id);
  auto heartbeat = std::make_shared<obs::Heartbeat>(heartbeat_config);
  {
    std::lock_guard<std::mutex> lock(heartbeat_mutex_);
    latest_heartbeat_ = heartbeat;
  }

  ScanRequest request;
  request.model = config_.model;
  request.firmware = &*image;
  request.database = &snapshot->database;
  request.cve_ids = scan.request.cve_ids;
  request.heartbeat = heartbeat.get();
  request.query_codes = &snapshot->queries;

  ScanReport report;
  try {
    report = engine_.run(request);
  } catch (const std::exception& error) {
    set_state(scan.id, "failed");
    scan.respond(error_response(500, error.what(), scan.id));
    return;
  }

  if (config_.events.enabled && !config_.events.file.empty()) {
    const std::string path =
        cli::indexed_output_file(config_.events.file, scan.id);
    std::ofstream out(path, std::ios::trunc);
    out << report.provenance_jsonl();
    if (!out.good())
      std::fprintf(stderr, "serve: cannot write events to %s\n", path.c_str());
  }

  ResultInfo info;
  info.request_id = scan.id;
  info.corpus_version = snapshot->version;
  info.interrupted = report.interrupted;
  info.seconds = report.total_seconds;
  info.cache_hits = report.cache.hits();
  info.cache_misses = report.cache.misses();
  info.report = report.canonical_text();
  info.summary = report.summary_text();
  if (scan.request.want_provenance) info.provenance = report.provenance_jsonl();
  // State before response: a client that just read its result may query
  // status immediately and must not still see "running".
  set_state(scan.id, report.interrupted ? "interrupted" : "done");
  scan.respond(result_response(info));
}

// --- health ----------------------------------------------------------------

ServiceHealth ScanService::health() const {
  ServiceHealth health;
  health.uptime_seconds = uptime_.elapsed_seconds();
  const auto snapshot = store_.current();
  health.corpus_version = snapshot->version;
  health.corpus_cves = snapshot->database.entries().size();
  health.draining = draining_.load(std::memory_order_acquire);
  health.queue = queue_.stats();
  health.cache = engine_.cache().stats();
  health.retrieval_query_codes = snapshot->queries.entries.size();
  health.retrieval_query_build_seconds = snapshot->queries.build_seconds;
  // Index builds happen inside engine analyze jobs; the registry counters
  // are the process-lifetime totals (zero while obs is disabled).
  obs::Registry& registry = obs::Registry::global();
  health.retrieval_index_builds =
      registry.counter("retrieval.index_builds").value();
  health.retrieval_index_vectors =
      registry.counter("retrieval.index_vectors").value();
  health.retrieval_index_build_seconds =
      registry.histogram("retrieval.index_build_seconds").sum();
  return health;
}

std::string ScanService::health_json() const {
  const ServiceHealth health = this->health();
  std::string out = "{\"type\":\"health\",\"uptime_s\":";
  obs_json::append_double(out, health.uptime_seconds);
  out += ",\"corpus\":{\"version\":" + std::to_string(health.corpus_version) +
         ",\"cves\":" + std::to_string(health.corpus_cves) + "}";
  out += std::string(",\"draining\":") + (health.draining ? "true" : "false");
  out += ",\"queue\":{\"depth\":" + std::to_string(health.queue.depth) +
         ",\"active\":" + std::to_string(health.queue.active) +
         ",\"capacity\":" + std::to_string(health.queue.capacity) +
         ",\"admitted\":" + std::to_string(health.queue.admitted) +
         ",\"rejected\":" + std::to_string(health.queue.rejected) +
         ",\"completed\":" + std::to_string(health.queue.completed) + "}";
  const std::uint64_t hits = health.cache.hits();
  const std::uint64_t misses = health.cache.misses();
  const std::uint64_t lookups = hits + misses;
  out += ",\"cache\":{\"hits\":" + std::to_string(hits) +
         ",\"misses\":" + std::to_string(misses) +
         ",\"stores\":" + std::to_string(health.cache.stores) +
         ",\"hit_ratio\":";
  obs_json::append_double(
      out, lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups));
  out += "}";
  std::optional<obs::HealthSnapshot> heartbeat;
  {
    std::lock_guard<std::mutex> lock(heartbeat_mutex_);
    if (latest_heartbeat_) heartbeat = latest_heartbeat_->last_snapshot();
  }
  out += ",\"heartbeat\":";
  if (heartbeat)
    out += obs::health_snapshot_jsonl(*heartbeat, /*include_process=*/false);
  else
    out += "null";
  out += ",\"retrieval\":{\"query_codes\":" +
         std::to_string(health.retrieval_query_codes) +
         ",\"query_build_s\":";
  obs_json::append_double(out, health.retrieval_query_build_seconds);
  out += ",\"index_builds\":" + std::to_string(health.retrieval_index_builds) +
         ",\"index_vectors\":" +
         std::to_string(health.retrieval_index_vectors) +
         ",\"index_build_s\":";
  obs_json::append_double(out, health.retrieval_index_build_seconds);
  out += "}";
  out += ",\"process\":{\"rss_kb\":" + std::to_string(obs::process_rss_kb()) +
         ",\"peak_rss_kb\":" + std::to_string(obs::process_peak_rss_kb()) +
         "}}";
  return out;
}

}  // namespace patchecko::service
