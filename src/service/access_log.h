// Structured access log: one deterministic JSONL line per completed
// request, written *after* the response frame (same ordering discipline as
// the accepted-before-result rule, so a tail -f of the log never gets
// ahead of what clients have seen).
//
// The key order is part of the contract — CI validates it — and every key
// is present on every line so downstream column extraction never has to
// branch on request type:
//
//   {"type":"access","id":N,"op":"scan","status":200,"outcome":"ok",
//    "queue_wait_s":F,"service_s":F,"corpus_version":N,
//    "cache_hits":N,"cache_misses":N,"cache_hit_ratio":F|null,
//    "prefilter_recall":F|null,"bytes_in":N,"bytes_out":N}
//
// `id` is 0 for request types that carry no request id (health, ping, …).
// `cache_hit_ratio` is null when the request touched no cache at all;
// `prefilter_recall` is null unless the scan ran the prefilter in verify
// mode (it is then the exact-vs-recalled ratio aggregated over the scan's
// detect stages).
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace patchecko::service {

struct AccessEntry {
  std::uint64_t id = 0;
  std::string op = "unknown";   ///< endpoint name ("scan", "health", …)
  int status = 200;             ///< HTTP-flavored code of the response
  std::string outcome = "ok";   ///< "ok","error","rejected","cancelled","interrupted"
  double queue_wait_s = 0.0;
  double service_s = 0.0;
  std::uint64_t corpus_version = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  bool has_cache = false;       ///< false renders cache_hit_ratio as null
  double prefilter_recall = 0.0;
  bool has_prefilter_recall = false;  ///< false renders the field as null
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

/// Renders one access-log line (no trailing newline). Pure and
/// deterministic: no wall-clock fields, stable key order.
std::string access_jsonl_line(const AccessEntry& entry);

/// Thread-safe JSONL sink. Empty path = stderr (mirrors the --events /
/// --heartbeat sink convention). Lines are flushed per append so a crashed
/// daemon loses at most the in-flight line.
class AccessLog {
 public:
  AccessLog() = default;
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Opens the sink; returns false (with *error filled) when the file
  /// cannot be created. Calling open twice closes the previous sink.
  bool open(const std::string& file, std::string* error = nullptr);
  bool enabled() const { return enabled_; }

  void append(const AccessEntry& entry);

  /// Flush + fsync the sink (no-op for the stderr sink). Called on
  /// graceful shutdown so a SIGINT/SIGTERM'd daemon leaves a durable log
  /// that reconciles with every response it put on the wire.
  void flush_sync();

 private:
  void close();

  bool enabled_ = false;
  std::FILE* stream_ = nullptr;  ///< nullptr = stderr
  std::mutex mutex_;
};

}  // namespace patchecko::service
