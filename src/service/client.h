// Client transport for the scan service: connect, frame, send, receive.
//
// Deliberately protocol-agnostic — it moves framed payloads, nothing more.
// Request construction and response interpretation live in protocol.h so
// the CLI, the tests, and the bench all speak through the same builders.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "service/protocol.h"

namespace patchecko::service {

class ServiceClient {
 public:
  /// Both return a disconnected (fail-state) client on error; check
  /// connected(). TCP targets 127.0.0.1 only, matching the server.
  static ServiceClient connect_unix(const std::string& socket_path);
  static ServiceClient connect_tcp(int port);

  ServiceClient() = default;
  ~ServiceClient();
  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  /// Frames and writes one payload; false on a dead connection.
  bool send(std::string_view payload);

  /// Blocks for the next response payload; nullopt on EOF/error. Responses
  /// arrive in server-send order, so a scan yields "accepted" first, then
  /// "result" (possibly much later).
  std::optional<std::string> receive();

  /// send() + receive() for strict request/response exchanges (health,
  /// status, reload, ping, drain).
  std::optional<std::string> call(std::string_view payload);

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}
  void close();

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace patchecko::service
