// `patchecko top` rendering: a deterministic text dashboard over one
// `stats` response.
//
// Rendering is a pure function of the parsed stats JSON — no wall clock, no
// terminal queries — so `top --once` output is scriptable and the CI smoke
// can assert on exact lines. Quantiles are derived from the rollup latency
// buckets (upper-bound semantics: pNN reports the smallest bucket bound
// whose cumulative count covers the quantile; the overflow bucket reports
// the observed window maximum).
#pragma once

#include <string>

#include "obs/json.h"

namespace patchecko::service {

/// Renders the dashboard (trailing newline included). `stats` is the parsed
/// `{"type":"stats",...}` response; missing fields render as zeros/dashes
/// rather than failing, so a newer client degrades gracefully against an
/// older daemon.
std::string render_top(const obs::json::Value& stats);

}  // namespace patchecko::service
