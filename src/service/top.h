// `patchecko top` rendering: a deterministic text dashboard over one
// `stats` response.
//
// Rendering is a pure function of the parsed stats JSON — no wall clock, no
// terminal queries — so `top --once` output is scriptable and the CI smoke
// can assert on exact lines. Quantiles are derived from the rollup latency
// buckets (upper-bound semantics: pNN reports the smallest bucket bound
// whose cumulative count covers the quantile; the overflow bucket reports
// the observed window maximum).
#pragma once

#include <string>

#include "obs/json.h"

namespace patchecko::service {

/// Structural check run before rendering: the payload must be a stats
/// response with its load-bearing blocks present and well-typed (type tag,
/// schema_version, corpus/queue objects, rollup with bounds + endpoint
/// table). Returns false with *error naming the first missing piece — the
/// CLI exits non-zero on that instead of painting a dashboard of zeros
/// from a truncated or mis-addressed response. Optional extras (rss,
/// profile block) stay optional: older daemons must still validate.
bool validate_stats(const obs::json::Value& stats, std::string* error);

/// Renders the dashboard (trailing newline included). `stats` is the parsed
/// `{"type":"stats",...}` response; missing *optional* fields render as
/// zeros/dashes rather than failing, so a newer client degrades gracefully
/// against an older daemon (run validate_stats first for the hard shape
/// check).
std::string render_top(const obs::json::Value& stats);

}  // namespace patchecko::service
