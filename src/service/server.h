// `patchecko serve` — the persistent scan service.
//
// A one-shot `batch-scan` pays the full cold-start bill on every
// invocation: load the model, rebuild the deterministic CVE corpus and
// database, warm the result cache from nothing. ScanService keeps all of
// that resident in one long-lived process and accepts scan requests over a
// length-prefixed JSON protocol (protocol.h) on a Unix-domain socket —
// optionally also TCP on 127.0.0.1 — so a fleet-scale pipeline submits
// firmware images and gets back the *byte-identical* canonical report the
// one-shot CLI would have produced, at warm-cache latency.
//
// Life of a request:
//   session thread: read frames -> parse -> validate -> try_admit
//     (full queue => 429-style reject; draining => 503) -> "accepted"
//   dispatcher thread: capture corpus snapshot -> load firmware ->
//     engine.run on the shared pool -> "result" frame (report + summary +
//     optional decision provenance) streamed back on the same connection.
//
// Corpus hot reload (SIGHUP or a `reload` request) builds the next
// CorpusSnapshot off to the side and swaps the store pointer; in-flight
// scans keep the generation they captured, so zero jobs are dropped.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/corpus_store.h"
#include "engine/engine.h"
#include "obs/rollup.h"
#include "service/access_log.h"
#include "service/admission.h"
#include "service/protocol.h"
#include "util/cli_args.h"
#include "util/timer.h"

namespace patchecko::service {

struct ServiceConfig {
  /// Unix-domain socket path; created by start(), unlinked by stop().
  std::string socket_path;
  /// TCP listener on 127.0.0.1: -1 = disabled, 0 = ephemeral (tests read
  /// the bound port back via tcp_port()), >= 1 = explicit.
  int tcp_port = -1;

  /// Resident similarity model, owned by the caller; must outlive the
  /// service.
  const SimilarityModel* model = nullptr;
  /// Corpus generation built at startup (scale/seed reloads override it).
  EvalConfig eval;

  /// Scan execution; `interrupt` here doubles as the graceful-shutdown
  /// token for in-flight scans.
  EngineConfig engine;

  /// Optional store-backed snapshot builder (`serve --corpus-dir`): when
  /// set, startup and hot reload load CorpusSnapshots from the prebuilt
  /// store instead of recompiling from source. A std::function so the
  /// service layer never links against pk_corpus.
  CorpusStore::SnapshotBuilder snapshot_builder;
  /// Provider of the prebuilt store's stats JSON object; when set, the
  /// `health` and `stats` responses carry a "corpus_store" block that
  /// `patchecko top` renders.
  std::function<std::string()> corpus_store_stats_json;

  /// Scans admitted but not yet dispatched; the bound is the backpressure
  /// contract — a full queue rejects instead of buffering.
  std::size_t queue_limit = 64;
  /// Dispatcher threads pulling from the admission queue. Each runs one
  /// scan at a time through the shared engine (its job graph already fans
  /// out on the global pool), so a small number is plenty.
  unsigned dispatchers = 2;

  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Per-request telemetry files, reusing the one-shot CLI specs: request
  /// N writes to indexed_output_file(file, N). Events require a file path;
  /// a bare heartbeat spec would spam daemon stderr and is rejected by the
  /// CLI layer.
  cli::OutputSpec events;
  cli::HeartbeatSpec heartbeat;

  /// Structured access log (`--access-log[=FILE]`): one JSONL line per
  /// completed request, written after the response frame. Empty file =
  /// stderr.
  cli::OutputSpec access_log;
  /// Periodic `stats` JSONL dump (`--stats-out=FILE[:interval_ms]`): the
  /// full stats response, one line per tick (plus one at startup).
  cli::HeartbeatSpec stats_out;
  /// Sliding window of the per-endpoint rollup (the `stats` endpoint).
  double stats_window_seconds = 60.0;

  /// Test hook: hold each dispatched scan this long before running it, so
  /// backpressure tests can saturate the queue deterministically.
  double scan_delay_seconds = 0.0;
};

/// Aggregate view for the `health` response.
struct ServiceHealth {
  double uptime_seconds = 0.0;
  std::uint64_t corpus_version = 0;
  std::size_t corpus_cves = 0;
  bool draining = false;
  AdmissionStats queue;
  CacheStats cache;  ///< engine lifetime totals

  // Retrieval prefilter state: the current snapshot's query catalog plus
  // process-lifetime target-index build totals (obs registry counters).
  std::size_t retrieval_query_codes = 0;   ///< catalog entries (CVE pairs)
  double retrieval_query_build_seconds = 0.0;
  std::uint64_t retrieval_index_builds = 0;
  std::uint64_t retrieval_index_vectors = 0;
  double retrieval_index_build_seconds = 0.0;  ///< summed across builds
};

class ScanService {
 public:
  /// Builds the resident state (corpus + database + engine) — the
  /// expensive part. Listeners are not live until start().
  explicit ScanService(ServiceConfig config);
  ~ScanService();

  ScanService(const ScanService&) = delete;
  ScanService& operator=(const ScanService&) = delete;

  /// Binds the sockets and spawns dispatcher/acceptor threads. Throws
  /// std::runtime_error when a socket cannot be bound.
  void start();

  /// Graceful shutdown: stops admission, answers queued-but-unstarted
  /// scans with a 503-style cancellation, waits for in-flight scans
  /// (cooperatively interrupted when config.engine.interrupt is set),
  /// closes every connection and listener. Idempotent.
  void stop();

  /// Rebuilds the corpus snapshot; nullopt fields keep the current
  /// generation's value. Returns the new snapshot.
  std::shared_ptr<const CorpusSnapshot> reload(std::optional<double> scale,
                                               std::optional<std::uint64_t> seed);

  /// True once a drain request has fully flushed the queue (the serve loop
  /// exits cleanly when it sees this).
  bool drained() const { return drained_.load(std::memory_order_acquire); }

  ServiceHealth health() const;
  /// The full `health` response payload (one JSON object), including the
  /// latest heartbeat snapshot and process RSS.
  std::string health_json() const;

  /// The full `stats` response payload: queue gauges plus the rollup
  /// snapshot (windowed per-endpoint counts/latency histograms and
  /// lifetime totals). Self-contained — `patchecko top` renders from it.
  std::string stats_json() const;

  /// Bound TCP port (after start()); -1 when TCP is disabled.
  int tcp_port() const { return tcp_port_; }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Connection;

  void accept_loop(int listen_fd);
  void session_loop(std::shared_ptr<Connection> connection);
  void handle_payload(const std::shared_ptr<Connection>& connection,
                      std::string_view payload);
  void handle_scan(const std::shared_ptr<Connection>& connection,
                   Request request, std::size_t bytes_in);
  void dispatch_loop();
  void run_scan(const PendingScan& scan);

  /// Records one completed request into the rollup and — after the
  /// response frame is already on the wire — the access log. `entry.op`
  /// names the endpoint ("scan", "health", …; unknown maps to "other").
  void finish_request(const AccessEntry& entry);
  void stats_ticker_loop();

  void set_state(std::uint64_t id, const char* state);
  std::optional<std::string> state_of(std::uint64_t id) const;

  ServiceConfig config_;
  CorpusStore store_;
  ScanEngine engine_;
  AdmissionQueue queue_;
  Stopwatch uptime_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> cancel_queued_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<std::uint64_t> next_request_id_{1};

  int unix_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int tcp_port_ = -1;
  std::vector<std::thread> acceptors_;
  std::vector<std::thread> dispatchers_;

  mutable std::mutex sessions_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> sessions_;

  mutable std::mutex states_mutex_;
  std::unordered_map<std::uint64_t, std::string> states_;

  /// Heartbeat of the most recently dispatched scan; the health endpoint
  /// reads its last emitted snapshot, tagged with the request it belongs
  /// to and the corpus generation that request captured.
  mutable std::mutex heartbeat_mutex_;
  std::shared_ptr<obs::Heartbeat> latest_heartbeat_;
  std::uint64_t latest_heartbeat_request_ = 0;
  std::uint64_t latest_heartbeat_corpus_ = 0;

  obs::Rollup rollup_;
  AccessLog access_log_;

  /// Periodic --stats-out dump: one stats_json() line per tick.
  std::thread stats_thread_;
  std::mutex stats_stop_mutex_;
  std::condition_variable stats_stop_cv_;
  bool stats_stop_ = false;

  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace patchecko::service
