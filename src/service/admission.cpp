#include "service/admission.h"

#include "obs/metrics.h"

namespace patchecko::service {

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

bool AdmissionQueue::try_admit(PendingScan scan) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) {
      ++rejected_;
      obs::Registry::global().counter("service.rejected").add();
      return false;
    }
    queue_.push_back(std::move(scan));
    ++admitted_;
    obs::Registry::global().counter("service.admitted").add();
    obs::Registry::global().gauge("service.queue_depth").add(1);
  }
  available_.notify_one();
  return true;
}

std::optional<PendingScan> AdmissionQueue::next() {
  std::unique_lock<std::mutex> lock(mutex_);
  available_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  PendingScan scan = std::move(queue_.front());
  queue_.pop_front();
  ++active_;
  obs::Registry::global().gauge("service.queue_depth").add(-1);
  return scan;
}

void AdmissionQueue::job_done() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_ > 0) --active_;
    ++completed_;
  }
  idle_.notify_all();
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  available_.notify_all();
  idle_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

void AdmissionQueue::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

AdmissionStats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionStats stats;
  stats.depth = queue_.size();
  stats.active = active_;
  stats.capacity = capacity_;
  stats.admitted = admitted_;
  stats.rejected = rejected_;
  stats.completed = completed_;
  return stats;
}

}  // namespace patchecko::service
