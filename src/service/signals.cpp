#include "service/signals.h"

#include <csignal>

namespace patchecko::service {

namespace {

std::atomic<bool> g_interrupt{false};
std::atomic<int> g_signal{0};
std::atomic<bool> g_reload{false};

extern "C" void handle_interrupt(int signum) {
  g_signal.store(signum, std::memory_order_relaxed);
  g_interrupt.store(true, std::memory_order_release);
}

extern "C" void handle_reload(int) {
  g_reload.store(true, std::memory_order_release);
}

}  // namespace

const std::atomic<bool>& interrupt_flag() { return g_interrupt; }

int interrupt_signal() { return g_signal.load(std::memory_order_relaxed); }

bool consume_reload_request() {
  return g_reload.exchange(false, std::memory_order_acq_rel);
}

void install_signal_handlers(bool with_sighup) {
  struct sigaction action {};
  action.sa_handler = handle_interrupt;
  sigemptyset(&action.sa_mask);
  // SA_RESTART keeps blocking reads alive across the signal; every loop
  // that must react polls the flag on a short timeout anyway.
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  if (with_sighup) {
    action.sa_handler = handle_reload;
    sigaction(SIGHUP, &action, nullptr);
  }
  // A client vanishing mid-response must surface as a write error, not kill
  // the daemon.
  std::signal(SIGPIPE, SIG_IGN);
}

void reset_signal_flags() {
  g_interrupt.store(false);
  g_signal.store(0);
  g_reload.store(false);
}

}  // namespace patchecko::service
