// Wire protocol of the scan service: length-prefixed JSONL frames.
//
// Every message — request or response — is one frame: a 4-byte big-endian
// payload length followed by exactly that many bytes of UTF-8 JSON (one
// document, no trailing newline required). Length-prefixing keeps framing
// trivial for concurrent clients (no in-band delimiter scanning of report
// text) while the JSON payloads stay greppable and scriptable.
//
// Robustness rules (tested by the frame-fuzz suite):
//   * An oversized frame (declared length > max_frame_bytes) is *skipped*,
//     not fatal: the reader consumes and discards the declared payload so
//     the connection stays framed, and the session answers with a 413-style
//     structured error instead of closing the socket.
//   * Malformed JSON and unknown request types produce 400-style error
//     responses; the connection survives.
//   * The reader never throws and never yields a payload larger than the
//     configured maximum, whatever bytes are pushed at it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace patchecko::service {

/// Default --max-frame-bytes: large enough for a full canonical report of a
/// paper-scale scan, small enough to bound a malicious client's allocation.
constexpr std::size_t kDefaultMaxFrameBytes = 16u * 1024 * 1024;
constexpr std::size_t kLengthPrefixBytes = 4;

/// Prepends the 4-byte big-endian length. Payloads above u32 range are a
/// programming error upstream; they are clamped out by the frame maximum
/// long before this limit matters.
std::string encode_frame(std::string_view payload);

enum class FrameStatus : std::uint8_t {
  ok,         ///< one complete payload extracted
  need_more,  ///< buffered bytes do not yet hold a full frame
  oversized,  ///< declared length exceeded the maximum; frame skipped
};

/// Incremental frame decoder over an arbitrary byte stream. push() bytes as
/// they arrive, then drain with next() until it reports need_more.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  void push(const char* data, std::size_t size);
  void push(std::string_view bytes) { push(bytes.data(), bytes.size()); }

  /// Extracts the next frame into `payload` (only written on ok). On
  /// oversized, the offending payload's declared length is reported via
  /// `dropped_bytes` (when non-null) and its bytes are discarded as they
  /// arrive; framing continues with the following frame.
  FrameStatus next(std::string& payload, std::uint64_t* dropped_bytes = nullptr);

  std::size_t buffered() const { return buffer_.size() - consumed_; }
  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  void compact();

  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;       ///< parsed prefix of buffer_
  std::uint64_t skip_remaining_ = 0;  ///< oversized payload left to discard
  bool skip_pending_report_ = false;  ///< oversized not yet surfaced
  std::uint64_t skip_total_ = 0;
};

// --- requests --------------------------------------------------------------

enum class RequestType : std::uint8_t {
  scan,     ///< run one firmware scan through the resident engine
  status,   ///< state of a previously submitted request id
  health,   ///< heartbeat snapshot + queue/cache/resource gauges
  reload,   ///< rebuild the CVE corpus snapshot (optionally new scale/seed)
  drain,    ///< stop admitting scans, finish the queue, then shut down
  ping,     ///< liveness probe
  stats,    ///< rolling per-endpoint aggregates (obs::Rollup snapshot)
  profile,  ///< capture an N-second sampling profile of the daemon
  unknown,  ///< unrecognized "type" — answered with a structured 400
};

struct Request {
  RequestType type = RequestType::unknown;
  std::string raw_type;  ///< the "type" string as sent (error reporting)

  // scan
  std::string firmware;               ///< firmware image path on the daemon
  std::vector<std::string> cve_ids;   ///< empty = every database entry
  bool want_provenance = false;       ///< include decision JSONL in result

  // status lookup, or a client-supplied id for a scan (must be unique and
  // >= 1; the server rejects a duplicate with a 409-style error)
  std::uint64_t request_id = 0;
  bool has_request_id = false;

  // reload
  std::optional<double> scale;
  std::optional<std::uint64_t> seed;

  // profile: capture duration and sampler cadence. Bounded at parse time
  // (duration (0, 300] s, hz [1, 10000]) so a typo cannot park a session
  // thread for an hour.
  double profile_seconds = 1.0;
  long profile_hz = 97;
};

/// Parses one request payload. Returns nullopt (with *error filled) only on
/// malformed JSON or structurally invalid fields; an unrecognized type
/// parses successfully as RequestType::unknown so the server can name it in
/// its error response.
std::optional<Request> parse_request(std::string_view payload,
                                     std::string* error);

// Request payload builders (client side). `request_id` 0 lets the server
// assign one; a nonzero value names the scan (and must be unique).
std::string scan_request_json(const std::string& firmware,
                              const std::vector<std::string>& cve_ids,
                              bool want_provenance,
                              std::uint64_t request_id = 0);
std::string status_request_json(std::uint64_t request_id);
std::string health_request_json();
std::string reload_request_json(std::optional<double> scale,
                                std::optional<std::uint64_t> seed);
std::string drain_request_json();
std::string ping_request_json();
std::string stats_request_json();
std::string profile_request_json(double seconds, long hz);

// --- responses -------------------------------------------------------------

/// HTTP-flavored error codes so scripts get familiar semantics: 400 bad
/// request, 404 not found, 413 frame too large, 429 queue full, 503
/// draining, 500 internal failure.
std::string error_response(int code, std::string_view message,
                           std::uint64_t request_id = 0);

std::string accepted_response(std::uint64_t request_id,
                              std::size_t queue_depth);

struct ResultInfo {
  std::uint64_t request_id = 0;
  std::uint64_t corpus_version = 0;
  bool interrupted = false;
  double seconds = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::string report;      ///< ScanReport::canonical_text(), byte-exact
  std::string summary;     ///< ScanReport::summary_text()
  std::string provenance;  ///< decision JSONL; empty when not requested
};

std::string result_response(const ResultInfo& info);

/// One completed daemon profile capture. `folded` is the flamegraph.pl/
/// speedscope-compatible folded-stack text; `top` is the rendered self-time
/// table (human-facing, goes to the client's stderr).
struct ProfileInfo {
  double seconds = 0.0;        ///< requested capture duration
  double hz = 0.0;             ///< sampler cadence
  std::uint64_t sweeps = 0;    ///< sampler passes over the thread registry
  std::uint64_t samples = 0;   ///< samples credited to some span
  std::uint64_t truncated = 0; ///< pushes refused by depth/node caps
  bool alloc_available = false;
  std::string folded;
  std::string top;
  std::string hot_path;        ///< hottest leaf ("a;b;c"); empty = idle
  std::uint64_t hot_samples = 0;
  std::uint64_t hot_alloc_bytes = 0;
};

std::string profile_response(const ProfileInfo& info);
std::string status_response(std::uint64_t request_id, std::string_view state);
std::string reloaded_response(std::uint64_t corpus_version, std::size_t cves,
                              double build_seconds);
std::string drained_response(std::uint64_t completed);
std::string pong_response();

}  // namespace patchecko::service
