#include "service/access_log.h"

#include <unistd.h>

#include "obs/json.h"

namespace patchecko::service {

namespace obs_json = patchecko::obs::json;

std::string access_jsonl_line(const AccessEntry& entry) {
  std::string out = "{\"type\":\"access\",\"id\":" + std::to_string(entry.id) +
                    ",\"op\":";
  obs_json::append_string(out, entry.op);
  out += ",\"status\":" + std::to_string(entry.status) + ",\"outcome\":";
  obs_json::append_string(out, entry.outcome);
  out += ",\"queue_wait_s\":";
  obs_json::append_double(out, entry.queue_wait_s);
  out += ",\"service_s\":";
  obs_json::append_double(out, entry.service_s);
  out += ",\"corpus_version\":" + std::to_string(entry.corpus_version) +
         ",\"cache_hits\":" + std::to_string(entry.cache_hits) +
         ",\"cache_misses\":" + std::to_string(entry.cache_misses) +
         ",\"cache_hit_ratio\":";
  const std::uint64_t lookups = entry.cache_hits + entry.cache_misses;
  if (entry.has_cache && lookups > 0)
    obs_json::append_double(out, static_cast<double>(entry.cache_hits) /
                                     static_cast<double>(lookups));
  else
    out += "null";
  out += ",\"prefilter_recall\":";
  if (entry.has_prefilter_recall)
    obs_json::append_double(out, entry.prefilter_recall);
  else
    out += "null";
  out += ",\"bytes_in\":" + std::to_string(entry.bytes_in) +
         ",\"bytes_out\":" + std::to_string(entry.bytes_out) + "}";
  return out;
}

AccessLog::~AccessLog() { close(); }

void AccessLog::close() {
  if (stream_ != nullptr) {
    std::fclose(stream_);
    stream_ = nullptr;
  }
  enabled_ = false;
}

bool AccessLog::open(const std::string& file, std::string* error) {
  const std::lock_guard<std::mutex> lock(mutex_);
  close();
  if (!file.empty()) {
    stream_ = std::fopen(file.c_str(), "w");
    if (stream_ == nullptr) {
      if (error != nullptr) *error = "cannot open access log: " + file;
      return false;
    }
  }
  enabled_ = true;
  return true;
}

void AccessLog::append(const AccessEntry& entry) {
  if (!enabled_) return;
  const std::string line = access_jsonl_line(entry);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  std::FILE* out = stream_ != nullptr ? stream_ : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fputc('\n', out);
  std::fflush(out);
}

void AccessLog::flush_sync() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_ || stream_ == nullptr) return;
  std::fflush(stream_);
  ::fsync(::fileno(stream_));
}

}  // namespace patchecko::service
