// Process signal wiring shared by `batch-scan` and `serve`.
//
// Handlers only flip async-signal-safe atomics; the actual work — stopping
// the scheduler, flushing telemetry, rebuilding the corpus — happens on
// normal threads that poll these flags. SIGINT/SIGTERM request a graceful
// interrupt (the flag doubles as the engine's cooperative cancel token);
// SIGHUP requests a corpus hot reload (serve only).
#pragma once

#include <atomic>

namespace patchecko::service {

/// Flag set by SIGINT/SIGTERM; wire it into EngineConfig::interrupt and
/// poll it from serve/scan loops.
const std::atomic<bool>& interrupt_flag();

/// The signal number that set the interrupt flag (0 if none yet). The CLI
/// exits with 128 + this, the shell convention for death-by-signal.
int interrupt_signal();

/// True once per SIGHUP delivery: reads and clears the reload flag.
bool consume_reload_request();

/// Installs SIGINT/SIGTERM handlers (and SIGHUP when `with_sighup`).
/// Idempotent; safe to call from any command.
void install_signal_handlers(bool with_sighup);

/// Test hook: reset all flags to the freshly-installed state.
void reset_signal_flags();

}  // namespace patchecko::service
