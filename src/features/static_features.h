// The 48 static function features of Table I.
//
// Extracted from a FunctionBinary's instruction stream and recovered CFG —
// exactly the information the paper's IDA Pro plugin consumes. Two feature
// vectors concatenate to the 96-wide input of the deep-learning similarity
// classifier (Figure 3).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "binary/binary.h"
#include "binary/cfg.h"

namespace patchecko {

constexpr std::size_t static_feature_count = 48;

using StaticFeatureVector = std::array<double, static_feature_count>;

/// Table I feature names, in vector order.
std::string_view static_feature_name(std::size_t index);

/// Extracts all 48 features. Builds the CFG internally.
StaticFeatureVector extract_static_features(const FunctionBinary& function);

/// Variant for callers that already built the CFG.
StaticFeatureVector extract_static_features(const FunctionBinary& function,
                                            const Cfg& cfg);

/// Per-feature affine normalizer fitted on a corpus: features are first
/// compressed with signed log1p (counts are heavy-tailed), then z-scored.
/// The same transform must be applied at training and inference time, so the
/// fitted parameters are serialized with the model.
class FeatureNormalizer {
 public:
  void fit(const std::vector<StaticFeatureVector>& corpus);
  StaticFeatureVector transform(const StaticFeatureVector& raw) const;

  bool fitted() const { return fitted_; }
  const StaticFeatureVector& means() const { return mean_; }
  const StaticFeatureVector& stddevs() const { return std_; }
  void set_parameters(const StaticFeatureVector& mean,
                      const StaticFeatureVector& stddev);

 private:
  StaticFeatureVector mean_{};
  StaticFeatureVector std_{};
  bool fitted_ = false;
};

}  // namespace patchecko
