#include "features/static_features.h"

#include <cmath>
#include <set>

#include "util/stats.h"

namespace patchecko {

std::string_view static_feature_name(std::size_t index) {
  static constexpr std::array<std::string_view, static_feature_count> names{
      "num_constant",        "num_string",          "num_inst",
      "size_local",          "fun_flag",            "num_import",
      "num_ox",              "num_cx",              "size_fun",
      "min_i_b",             "max_i_b",             "avg_i_b",
      "std_i_b",             "min_s_b",             "max_s_b",
      "avg_s_b",             "std_s_b",             "num_bb",
      "num_edge",            "cyclomatic",          "fcb_normal",
      "fcb_indjump",         "fcb_ret",             "fcb_cndret",
      "fcb_noret",           "fcb_enoret",          "fcb_extern",
      "fcb_error",           "min_call_b",          "max_call_b",
      "avg_call_b",          "std_call_b",          "sum_call_b",
      "min_arith_b",         "max_arith_b",         "avg_arith_b",
      "std_arith_b",         "sum_arith_b",         "min_arith_fp_b",
      "max_arith_fp_b",      "avg_arith_fp_b",      "std_arith_fp_b",
      "sum_arith_fp_b",      "min_betweeness_cent", "max_betweeness_cent",
      "avg_betweeness_cent", "std_betweeness_cent", "betweeness_cent_zero"};
  return index < names.size() ? names[index] : "unknown";
}

StaticFeatureVector extract_static_features(const FunctionBinary& function) {
  return extract_static_features(function, build_cfg(function));
}

StaticFeatureVector extract_static_features(const FunctionBinary& function,
                                            const Cfg& cfg) {
  StaticFeatureVector f{};
  const auto& code = function.code;

  // --- whole-function counters ------------------------------------------------
  double num_constant = 0, num_string = 0, num_cx = 0;
  std::set<LibFn> imports;
  std::set<std::int32_t> code_refs;
  bool has_fp = false;
  for (const Instruction& inst : code) {
    if (inst.op == Opcode::ldi) ++num_constant;
    if (inst.op == Opcode::ldstr) ++num_string;
    if (is_call(inst.op)) ++num_cx;
    if (inst.op == Opcode::libcall)
      imports.insert(static_cast<LibFn>(inst.imm));
    if (is_fp_arith(inst.op)) has_fp = true;
    if (inst.target >= 0) code_refs.insert(inst.target);
    if (inst.op == Opcode::jmpi) {
      const auto table_id = static_cast<std::size_t>(inst.imm);
      if (table_id < function.jump_tables.size())
        for (std::int32_t entry : function.jump_tables[table_id])
          code_refs.insert(entry);
    }
  }

  // fun_flag: a small bitmask of structural properties (the paper's IDA
  // FUNC_* flags analog).
  double fun_flag = 0.0;
  if (!function.jump_tables.empty()) fun_flag += 1.0;
  if (num_cx == 0) fun_flag += 2.0;  // leaf function
  if (has_fp) fun_flag += 4.0;
  if (function.frame_size > 0) fun_flag += 8.0;

  f[0] = num_constant;
  f[1] = num_string;
  f[2] = static_cast<double>(code.size());
  f[3] = static_cast<double>(function.frame_size);
  f[4] = fun_flag;
  f[5] = static_cast<double>(imports.size());
  f[6] = static_cast<double>(code_refs.size());
  f[7] = num_cx;
  f[8] = static_cast<double>(function.byte_size());

  // --- per-basic-block statistics ---------------------------------------------
  std::vector<double> insts_per_block, bytes_per_block, calls_per_block,
      arith_per_block, fp_per_block;
  std::array<double, 8> kind_counts{};
  for (const BasicBlock& block : cfg.blocks) {
    double calls = 0, arith = 0, fp = 0, bytes = 0;
    for (std::size_t i = block.first; i <= block.last; ++i) {
      const Instruction& inst = code[i];
      if (is_call(inst.op) || inst.op == Opcode::libcall ||
          inst.op == Opcode::syscall)
        ++calls;
      if (is_int_arith(inst.op)) ++arith;
      if (is_fp_arith(inst.op)) ++fp;
      bytes += static_cast<double>(encoded_size(inst, function.arch));
    }
    insts_per_block.push_back(
        static_cast<double>(block.instruction_count()));
    bytes_per_block.push_back(bytes);
    calls_per_block.push_back(calls);
    arith_per_block.push_back(arith);
    fp_per_block.push_back(fp);
    kind_counts[static_cast<std::size_t>(block.kind)] += 1.0;
  }

  const Summary inst_summary = summarize(insts_per_block);
  const Summary byte_summary = summarize(bytes_per_block);
  f[9] = inst_summary.min;
  f[10] = inst_summary.max;
  f[11] = inst_summary.mean;
  f[12] = inst_summary.stddev;
  f[13] = byte_summary.min;
  f[14] = byte_summary.max;
  f[15] = byte_summary.mean;
  f[16] = byte_summary.stddev;
  f[17] = static_cast<double>(cfg.block_count());
  f[18] = static_cast<double>(cfg.graph.edge_count());
  f[19] = static_cast<double>(cfg.graph.cyclomatic_complexity());
  for (std::size_t k = 0; k < kind_counts.size(); ++k)
    f[20 + k] = kind_counts[k];

  const Summary call_summary = summarize(calls_per_block);
  f[28] = call_summary.min;
  f[29] = call_summary.max;
  f[30] = call_summary.mean;
  f[31] = call_summary.stddev;
  f[32] = call_summary.sum;

  const Summary arith_summary = summarize(arith_per_block);
  f[33] = arith_summary.min;
  f[34] = arith_summary.max;
  f[35] = arith_summary.mean;
  f[36] = arith_summary.stddev;
  f[37] = arith_summary.sum;

  const Summary fp_summary = summarize(fp_per_block);
  f[38] = fp_summary.min;
  f[39] = fp_summary.max;
  f[40] = fp_summary.mean;
  f[41] = fp_summary.stddev;
  f[42] = fp_summary.sum;

  // --- betweenness centrality over the CFG --------------------------------------
  const std::vector<double> centrality = betweenness_centrality(cfg.graph);
  const Summary cent_summary = summarize(centrality);
  double zero_centrality = 0;
  for (double c : centrality)
    if (c == 0.0) ++zero_centrality;
  f[43] = cent_summary.min;
  f[44] = cent_summary.max;
  f[45] = cent_summary.mean;
  f[46] = cent_summary.stddev;
  f[47] = zero_centrality;

  return f;
}

void FeatureNormalizer::fit(const std::vector<StaticFeatureVector>& corpus) {
  mean_.fill(0.0);
  std_.fill(1.0);
  if (corpus.empty()) {
    fitted_ = true;
    return;
  }
  const double n = static_cast<double>(corpus.size());
  for (const auto& raw : corpus)
    for (std::size_t i = 0; i < static_feature_count; ++i)
      mean_[i] += signed_log1p(raw[i]);
  for (double& m : mean_) m /= n;
  StaticFeatureVector var{};
  for (const auto& raw : corpus)
    for (std::size_t i = 0; i < static_feature_count; ++i) {
      const double d = signed_log1p(raw[i]) - mean_[i];
      var[i] += d * d;
    }
  for (std::size_t i = 0; i < static_feature_count; ++i)
    std_[i] = var[i] > 0.0 ? std::sqrt(var[i] / n) : 1.0;
  fitted_ = true;
}

StaticFeatureVector FeatureNormalizer::transform(
    const StaticFeatureVector& raw) const {
  StaticFeatureVector out{};
  for (std::size_t i = 0; i < static_feature_count; ++i)
    out[i] = (signed_log1p(raw[i]) - mean_[i]) / std_[i];
  return out;
}

void FeatureNormalizer::set_parameters(const StaticFeatureVector& mean,
                                       const StaticFeatureVector& stddev) {
  mean_ = mean;
  std_ = stddev;
  fitted_ = true;
}

}  // namespace patchecko
