// Incremental population of the prebuilt-corpus store and the store-backed
// CorpusSnapshot warm path.
//
// build_store() walks the requested (arch, opt) matrix over the
// deterministic evaluation corpus, computes every artifact key, and builds
// only the missing ones — in parallel on the PR 1 work-stealing pool. A
// second run over an unchanged matrix performs zero recompiles.
//
// load_snapshot() assembles a CorpusSnapshot from stored CveEntry artifacts
// instead of re-running the compiler/fuzzer/profiler pipeline: source
// regeneration (cheap, deterministic) still happens, the expensive database
// build does not. Missing or corrupt entries fall back to a cold build of
// just that entry and are written back, so a partially-populated store
// self-heals. The assembled snapshot is bit-identical to a cold one: entry
// fuzz streams are re-derived with the same rng fork walk the cold
// CveDatabase constructor uses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "corpus/store.h"
#include "engine/corpus_store.h"

namespace patchecko::corpus {

/// One `corpus build` request: the evaluation universe plus the library
/// build matrix. Empty arches/opts default to the database reference
/// settings; the (db_arch, db_opt) cell is always included because CveEntry
/// builds load their reference library from it.
struct BuildMatrix {
  EvalConfig eval;
  DatabaseConfig database;
  std::vector<Arch> arches;
  std::vector<OptLevel> opts;
  unsigned jobs = 1;
};

struct BuildReport {
  std::uint64_t requested = 0;  ///< keys the matrix asked for
  std::uint64_t reused = 0;     ///< already present (no recompile)
  std::uint64_t built = 0;      ///< compiled + stored this run
  std::uint64_t library_artifacts = 0;
  std::uint64_t entry_artifacts = 0;
  double build_seconds = 0.0;
};

/// Key of library `lib` compiled at (arch, opt) with the vulnerable versions
/// in place — the (db_arch, db_opt) cell is byte-identical to
/// EvalCorpus::compile_reference output.
ArtifactKey library_variant_key(const EvalCorpus& corpus, std::size_t lib,
                                Arch arch, OptLevel opt);

/// Key of hosted CVE `cve`'s database entry. `entry_index` is the global
/// cold-build position (libraries ascending, corpus order within each): it
/// pins the entry's fuzz rng fork.
ArtifactKey entry_key(const EvalCorpus& corpus, const HostedCve& cve,
                      std::size_t entry_index, const DatabaseConfig& config);

BuildReport build_store(PrebuiltStore& store, const BuildMatrix& matrix);

struct SnapshotLoadStats {
  std::uint64_t entries_loaded = 0;  ///< deserialized from the store
  std::uint64_t entries_built = 0;   ///< cold-built fallbacks
};

/// The warm database path on its own: assembles a CveDatabase for `corpus`
/// from stored entry artifacts (cold-building and healing misses). The
/// bench harness uses this directly; load_snapshot wraps it in a full
/// CorpusSnapshot.
CveDatabase load_database(PrebuiltStore& store, const EvalCorpus& corpus,
                          const DatabaseConfig& config,
                          SnapshotLoadStats* stats = nullptr);

std::shared_ptr<const CorpusSnapshot> load_snapshot(
    PrebuiltStore& store, std::uint64_t version, const EvalConfig& eval,
    const DatabaseConfig& config, SnapshotLoadStats* stats = nullptr);

/// Adapts load_snapshot to the engine's CorpusStore hook: `patchecko serve
/// --corpus-dir` swaps this in so startup and SIGHUP reloads read the store
/// instead of recompiling.
CorpusStore::SnapshotBuilder store_backed_builder(
    std::shared_ptr<PrebuiltStore> store);

}  // namespace patchecko::corpus
