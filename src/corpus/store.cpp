#include "corpus/store.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace patchecko::corpus {

namespace fs = std::filesystem;

namespace {

/// Process-wide mirrors of the per-store counters, aggregated across every
/// PrebuiltStore instance (feeds `--metrics` export and the serve daemon's
/// corpus_store health block).
struct StoreMetrics {
  obs::Counter& hits = obs::Registry::global().counter("corpus.store.hits");
  obs::Counter& misses =
      obs::Registry::global().counter("corpus.store.misses");
  obs::Counter& stores =
      obs::Registry::global().counter("corpus.store.stores");
  obs::Counter& gc_reclaimed =
      obs::Registry::global().counter("corpus.store.gc_reclaimed");
  obs::Gauge& bytes = obs::Registry::global().gauge("corpus.store.bytes");
  obs::Gauge& entries =
      obs::Registry::global().gauge("corpus.store.entries");

  static StoreMetrics& get() {
    static StoreMetrics metrics;
    return metrics;
  }
};

constexpr std::uint8_t kStoreMagic[4] = {'P', 'K', 'C', 'S'};
constexpr std::uint64_t kContainerVersion = 1;
constexpr std::uint64_t kManifestSchema = 1;

void append_bytes(std::vector<std::uint8_t>& out, const void* data,
                  std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  append_bytes(out, &value, sizeof(value));
}

void append_string(std::vector<std::uint8_t>& out, const std::string& text) {
  append_u64(out, text.size());
  append_bytes(out, text.data(), text.size());
}

struct Reader {
  const std::vector<std::uint8_t>& bytes;
  std::size_t pos = 0;
  bool ok = true;

  bool read(void* out, std::size_t size) {
    if (!ok || pos + size > bytes.size()) {
      ok = false;
      return false;
    }
    std::memcpy(out, bytes.data() + pos, size);
    pos += size;
    return true;
  }
  std::uint64_t read_u64() {
    std::uint64_t value = 0;
    read(&value, sizeof(value));
    return value;
  }
  std::string read_string() {
    const std::uint64_t size = read_u64();
    if (!ok || pos + size > bytes.size()) {
      ok = false;
      return {};
    }
    std::string text(reinterpret_cast<const char*>(bytes.data() + pos),
                     static_cast<std::size_t>(size));
    pos += static_cast<std::size_t>(size);
    return text;
  }
};

/// Parsed container header + payload view.
struct Container {
  ArtifactKey key;
  std::vector<std::uint8_t> payload;
};

std::vector<std::uint8_t> build_container(
    const ArtifactKey& key, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + key.kind.size() + key.params.size() + 96);
  append_bytes(out, kStoreMagic, sizeof(kStoreMagic));
  append_u64(out, kContainerVersion);
  append_string(out, key.kind);
  append_u64(out, key.source_fingerprint);
  append_u64(out, static_cast<std::uint64_t>(key.arch));
  append_u64(out, static_cast<std::uint64_t>(key.opt));
  append_u64(out, key.compiler_version);
  append_string(out, key.params);
  append_u64(out, payload.size());
  append_bytes(out, payload.data(), payload.size());
  Digest digest;
  digest.absorb_u64(payload.size());
  digest.absorb(payload.data(), payload.size());
  append_u64(out, digest.hi);
  append_u64(out, digest.lo);
  return out;
}

/// nullopt on any structural problem or payload-digest mismatch; `detail`
/// (when non-null) receives a human-readable reason for verify().
std::optional<Container> parse_container(
    const std::vector<std::uint8_t>& bytes, std::string* detail = nullptr) {
  const auto fail = [detail](const char* reason) -> std::optional<Container> {
    if (detail != nullptr) *detail = reason;
    return std::nullopt;
  };
  Reader reader{bytes};
  std::uint8_t magic[4] = {};
  if (!reader.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kStoreMagic, sizeof(magic)) != 0)
    return fail("bad magic");
  if (reader.read_u64() != kContainerVersion)
    return fail("unsupported container version");
  Container container;
  container.key.kind = reader.read_string();
  container.key.source_fingerprint = reader.read_u64();
  container.key.arch = static_cast<Arch>(reader.read_u64());
  container.key.opt = static_cast<OptLevel>(reader.read_u64());
  container.key.compiler_version = reader.read_u64();
  container.key.params = reader.read_string();
  const std::uint64_t payload_size = reader.read_u64();
  if (!reader.ok || payload_size > bytes.size() - reader.pos)
    return fail("truncated header");
  container.payload.resize(static_cast<std::size_t>(payload_size));
  if (!reader.read(container.payload.data(), container.payload.size()))
    return fail("truncated payload");
  Digest digest;
  digest.absorb_u64(container.payload.size());
  digest.absorb(container.payload.data(), container.payload.size());
  const std::uint64_t hi = reader.read_u64();
  const std::uint64_t lo = reader.read_u64();
  if (!reader.ok || reader.pos != bytes.size())
    return fail("truncated trailer");
  if (hi != digest.hi || lo != digest.lo)
    return fail("payload digest mismatch");
  return container;
}

std::optional<std::vector<std::uint8_t>> read_all(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return std::nullopt;
  return bytes;
}

bool write_atomic(const fs::path& final_path,
                  const std::vector<std::uint8_t>& bytes) {
  // Write-to-temp + rename so readers never observe a half-written object;
  // the counter keeps concurrent writers of the same key apart.
  static std::atomic<std::uint64_t> temp_counter{0};
  const fs::path temp_path =
      final_path.string() + ".tmp" +
      std::to_string(temp_counter.fetch_add(1));
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) return false;
  }
  std::error_code ec;
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    fs::remove(temp_path, ec);
    return false;
  }
  return true;
}

}  // namespace

// --- key -------------------------------------------------------------------

Digest key_digest(const ArtifactKey& key) {
  Digest digest;
  digest.absorb_string(key.kind);
  digest.absorb_u64(key.source_fingerprint);
  digest.absorb_u64(static_cast<std::uint64_t>(key.arch));
  digest.absorb_u64(static_cast<std::uint64_t>(key.opt));
  digest.absorb_u64(key.compiler_version);
  digest.absorb_string(key.params);
  return digest;
}

std::string key_to_string(const ArtifactKey& key) {
  char fingerprint[17] = {};
  std::snprintf(fingerprint, sizeof(fingerprint), "%016llx",
                static_cast<unsigned long long>(key.source_fingerprint));
  return key.kind + " src=" + fingerprint + " arch=" +
         std::string(arch_name(key.arch)) + " opt=" +
         std::string(opt_level_name(key.opt)) + " cc=" +
         std::to_string(key.compiler_version) + " " + key.params;
}

// --- PrebuiltStore ---------------------------------------------------------

PrebuiltStore::PrebuiltStore(std::string root) : root_(std::move(root)) {
  fs::create_directories(fs::path(root_) / "objects");
  read_manifest();
}

std::string PrebuiltStore::object_path(const std::string& hex) const {
  return (fs::path(root_) / "objects" / hex.substr(0, 2) / (hex + ".bin"))
      .string();
}

std::uint64_t PrebuiltStore::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

std::uint64_t PrebuiltStore::begin_generation() {
  std::lock_guard<std::mutex> lock(mutex_);
  return ++generation_;
}

bool PrebuiltStore::contains(const ArtifactKey& key) const {
  const std::string hex = key_digest(key).hex();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.find(hex) == entries_.end()) return false;
  }
  std::error_code ec;
  return fs::exists(object_path(hex), ec);
}

std::optional<std::vector<std::uint8_t>> PrebuiltStore::load(
    const ArtifactKey& key) {
  const std::string hex = key_digest(key).hex();
  const auto miss = [this] {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.misses;
    StoreMetrics::get().misses.add();
    return std::nullopt;
  };
  const auto bytes = read_all(object_path(hex));
  if (!bytes) return miss();
  const auto container = parse_container(*bytes);
  // The echoed key must be the one we asked for: an object renamed or
  // copied over another key's address is rejected here, not served.
  if (!container || container->key != key) return miss();
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.hits;
  StoreMetrics::get().hits.add();
  auto it = entries_.find(hex);
  if (it == entries_.end()) {
    // Object written by another process since our manifest snapshot:
    // adopt it so flush()/gc() account for it.
    ManifestEntry entry;
    entry.key = key_to_string(key);
    entry.kind = key.kind;
    entry.bytes = bytes->size();
    entry.generation = generation_;
    entries_.emplace(hex, std::move(entry));
  } else {
    it->second.generation = generation_;
  }
  return container->payload;
}

void PrebuiltStore::put(const ArtifactKey& key,
                        const std::vector<std::uint8_t>& payload) {
  const std::string hex = key_digest(key).hex();
  const std::vector<std::uint8_t> container = build_container(key, payload);
  const fs::path path = object_path(hex);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (!write_atomic(path, container)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.stores;
  StoreMetrics::get().stores.add();
  ManifestEntry entry;
  entry.key = key_to_string(key);
  entry.kind = key.kind;
  entry.bytes = container.size();
  entry.generation = generation_;
  entries_[hex] = std::move(entry);
}

void PrebuiltStore::touch(const ArtifactKey& key) {
  const std::string hex = key_digest(key).hex();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(hex);
  if (it != entries_.end()) it->second.generation = generation_;
}

// --- manifest --------------------------------------------------------------

void PrebuiltStore::read_manifest() {
  const auto bytes = read_all(fs::path(root_) / "store.json");
  if (!bytes) return;  // fresh store
  const std::string text(bytes->begin(), bytes->end());
  const auto parsed = obs::json::parse(text);
  using obs::json::Value;
  if (!parsed || parsed->kind() != Value::Kind::object ||
      parsed->get("type").as_string() != "corpus-store" ||
      parsed->get("schema_version").as_number() !=
          static_cast<double>(kManifestSchema)) {
    manifest_parse_failed_ = true;
    return;
  }
  generation_ =
      static_cast<std::uint64_t>(parsed->get("generation").as_number());
  const Value& entries = parsed->get("entries");
  if (entries.kind() != Value::Kind::object) {
    manifest_parse_failed_ = true;
    return;
  }
  for (const auto& [hex, value] : entries.as_object()) {
    if (value.kind() != Value::Kind::object) continue;
    ManifestEntry entry;
    entry.key = value.get("key").as_string();
    entry.kind = value.get("kind").as_string();
    entry.bytes =
        static_cast<std::uint64_t>(value.get("bytes").as_number());
    entry.generation =
        static_cast<std::uint64_t>(value.get("generation").as_number());
    entries_.emplace(hex, std::move(entry));
  }
}

bool PrebuiltStore::flush() {
  std::string out = "{\"type\":\"corpus-store\",\"schema_version\":" +
                    std::to_string(kManifestSchema);
  std::lock_guard<std::mutex> lock(mutex_);
  out += ",\"generation\":" + std::to_string(generation_) + ",\"entries\":{";
  bool first = true;
  for (const auto& [hex, entry] : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + hex + "\":{\"key\":";
    obs::json::append_string(out, entry.key);
    out += ",\"kind\":";
    obs::json::append_string(out, entry.kind);
    out += ",\"bytes\":" + std::to_string(entry.bytes) +
           ",\"generation\":" + std::to_string(entry.generation) + "}";
  }
  out += "}}\n";
  const std::vector<std::uint8_t> bytes(out.begin(), out.end());
  return write_atomic(fs::path(root_) / "store.json", bytes);
}

std::vector<std::pair<std::string, std::string>> PrebuiltStore::disk_objects()
    const {
  // (hex, relative path) of every *.bin under objects/, sorted for
  // deterministic verify/gc ordering. Leftover .tmp files from a crashed
  // writer are ignored (gc sweeps them).
  std::vector<std::pair<std::string, std::string>> found;
  const fs::path objects = fs::path(root_) / "objects";
  std::error_code ec;
  for (fs::recursive_directory_iterator it(objects, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& path = it->path();
    if (path.extension() != ".bin") continue;
    found.emplace_back(path.stem().string(),
                       fs::relative(path, root_, ec).string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

std::optional<VerifyIssue> PrebuiltStore::verify() {
  std::map<std::string, ManifestEntry> entries;
  bool parse_failed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries = entries_;
    parse_failed = manifest_parse_failed_;
  }
  if (parse_failed)
    return VerifyIssue{"store.json", "", "manifest is unparseable"};

  for (const auto& [hex, entry] : entries) {
    const auto issue = [&](const std::string& detail) {
      return VerifyIssue{hex, entry.key, detail};
    };
    const auto bytes = read_all(object_path(hex));
    if (!bytes) return issue("object missing on disk");
    if (bytes->size() != entry.bytes)
      return issue("size drift: manifest says " +
                   std::to_string(entry.bytes) + " bytes, disk has " +
                   std::to_string(bytes->size()));
    std::string detail;
    const auto container = parse_container(*bytes, &detail);
    if (!container) return issue(detail);
    // The container's echoed key must hash to the address it is filed
    // under — a swapped object fails here even when internally consistent.
    if (key_digest(container->key).hex() != hex)
      return issue("key echo does not match object address");
  }

  for (const auto& [hex, path] : disk_objects()) {
    if (entries.find(hex) == entries.end())
      return VerifyIssue{path, "", "object not in manifest"};
  }
  return std::nullopt;
}

GcResult PrebuiltStore::gc(bool dry_run) {
  GcResult result;
  std::lock_guard<std::mutex> lock(mutex_);
  // Pass 1: manifest entries not referenced by the current generation.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.generation >= generation_) {
      ++it;
      continue;
    }
    ++result.removed_objects;
    result.reclaimed_bytes += it->second.bytes;
    if (dry_run) {
      ++it;
      continue;
    }
    std::error_code ec;
    fs::remove(object_path(it->first), ec);
    it = entries_.erase(it);
  }
  // Pass 2: on-disk objects (and stale temp files) the manifest does not
  // know about.
  const fs::path objects = fs::path(root_) / "objects";
  std::error_code ec;
  for (fs::recursive_directory_iterator it(objects, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path path = it->path();
    const bool tracked = path.extension() == ".bin" &&
                         entries_.find(path.stem().string()) != entries_.end();
    if (tracked) continue;
    ++result.removed_objects;
    result.reclaimed_bytes += static_cast<std::uint64_t>(it->file_size(ec));
    if (!dry_run) fs::remove(path, ec);
  }
  if (!dry_run) {
    counters_.gc_reclaimed_bytes += result.reclaimed_bytes;
    StoreMetrics::get().gc_reclaimed.add(result.reclaimed_bytes);
  }
  return result;
}

StoreStats PrebuiltStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreStats stats = counters_;
  stats.generation = generation_;
  stats.entries = entries_.size();
  stats.bytes = 0;
  for (const auto& [hex, entry] : entries_) stats.bytes += entry.bytes;
  StoreMetrics::get().entries.set(static_cast<std::int64_t>(stats.entries));
  StoreMetrics::get().bytes.set(static_cast<std::int64_t>(stats.bytes));
  return stats;
}

std::string PrebuiltStore::stats_json() const {
  const StoreStats totals = stats();
  std::string out = "{\"dir\":";
  obs::json::append_string(out, root_);
  out += ",\"entries\":" + std::to_string(totals.entries) +
         ",\"bytes\":" + std::to_string(totals.bytes) +
         ",\"generation\":" + std::to_string(totals.generation) +
         ",\"hits\":" + std::to_string(totals.hits) +
         ",\"misses\":" + std::to_string(totals.misses) +
         ",\"stores\":" + std::to_string(totals.stores) +
         ",\"gc_reclaimed_bytes\":" +
         std::to_string(totals.gc_reclaimed_bytes) + "}";
  return out;
}

}  // namespace patchecko::corpus
