#include "corpus/serialize.h"

#include <cstring>
#include <type_traits>

#include "features/static_features.h"

namespace patchecko::corpus {

namespace {

// --- byte-stream helpers ---------------------------------------------------
// Same shape as the PR 1 result-cache helpers (engine/cache.cpp): raw
// native-endian scalars, bounds-checked reads with a latched failure flag.

void append_bytes(std::vector<std::uint8_t>& out, const void* data,
                  std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  append_bytes(out, &value, sizeof(value));
}

void append_i64(std::vector<std::uint8_t>& out, std::int64_t value) {
  append_bytes(out, &value, sizeof(value));
}

void append_double(std::vector<std::uint8_t>& out, double value) {
  append_bytes(out, &value, sizeof(value));
}

void append_string(std::vector<std::uint8_t>& out, const std::string& text) {
  append_u64(out, text.size());
  append_bytes(out, text.data(), text.size());
}

struct Reader {
  const std::vector<std::uint8_t>& bytes;
  std::size_t pos = 0;
  bool ok = true;

  bool read(void* out, std::size_t size) {
    if (!ok || pos + size > bytes.size()) {
      ok = false;
      return false;
    }
    std::memcpy(out, bytes.data() + pos, size);
    pos += size;
    return true;
  }
  std::uint64_t read_u64() {
    std::uint64_t value = 0;
    read(&value, sizeof(value));
    return value;
  }
  std::int64_t read_i64() {
    std::int64_t value = 0;
    read(&value, sizeof(value));
    return value;
  }
  double read_double() {
    double value = 0.0;
    read(&value, sizeof(value));
    return value;
  }
  std::string read_string() {
    const std::uint64_t size = read_u64();
    if (!ok || pos + size > bytes.size()) {
      ok = false;
      return {};
    }
    std::string text(reinterpret_cast<const char*>(bytes.data() + pos),
                     static_cast<std::size_t>(size));
    pos += static_cast<std::size_t>(size);
    return text;
  }
  /// Guards count-prefixed loops: a fabricated huge count must fail before
  /// any resize() tries to allocate it.
  bool fits(std::uint64_t count, std::size_t element_size) {
    if (ok && count <= (bytes.size() - pos) / element_size) return true;
    ok = false;
    return false;
  }
};

// DynamicFeatures is 21 naturally-aligned 8-byte fields, so the raw object
// representation has no padding and round-trips bit-exactly.
static_assert(std::is_trivially_copyable_v<DynamicFeatures> &&
                  sizeof(DynamicFeatures) == DynamicFeatures::count * 8,
              "DynamicFeatures layout changed; bump kPayloadVersion and "
              "serialize field-by-field");

constexpr std::uint64_t kPayloadVersion = 1;
constexpr std::uint64_t kLibraryTag = 0x4c4cu;  // 'LL'
constexpr std::uint64_t kEntryTag = 0x4545u;    // 'EE'

// --- field-group helpers ---------------------------------------------------

void append_function(std::vector<std::uint8_t>& out,
                     const FunctionBinary& fn) {
  append_string(out, fn.name);
  append_u64(out, static_cast<std::uint64_t>(fn.arch));
  append_u64(out, static_cast<std::uint64_t>(fn.opt));
  append_u64(out, fn.id);
  append_i64(out, fn.frame_size);
  append_u64(out, fn.source_uid);
  append_u64(out, fn.param_types.size());
  for (const ValueType type : fn.param_types)
    append_u64(out, static_cast<std::uint64_t>(type));
  append_u64(out, fn.jump_tables.size());
  for (const auto& table : fn.jump_tables) {
    append_u64(out, table.size());
    for (const std::int32_t target : table) append_i64(out, target);
  }
  append_u64(out, fn.code.size());
  for (const Instruction& inst : fn.code) {
    append_u64(out, static_cast<std::uint64_t>(inst.op));
    append_u64(out, inst.dst);
    append_u64(out, inst.src1);
    append_u64(out, inst.src2);
    append_i64(out, inst.imm);
    append_i64(out, inst.target);
  }
}

bool read_function(Reader& reader, FunctionBinary& fn) {
  fn.name = reader.read_string();
  fn.arch = static_cast<Arch>(reader.read_u64());
  fn.opt = static_cast<OptLevel>(reader.read_u64());
  fn.id = static_cast<std::uint32_t>(reader.read_u64());
  fn.frame_size = reader.read_i64();
  fn.source_uid = reader.read_u64();
  const std::uint64_t param_count = reader.read_u64();
  if (!reader.fits(param_count, 8)) return false;
  fn.param_types.resize(static_cast<std::size_t>(param_count));
  for (ValueType& type : fn.param_types)
    type = static_cast<ValueType>(reader.read_u64());
  const std::uint64_t table_count = reader.read_u64();
  if (!reader.fits(table_count, 8)) return false;
  fn.jump_tables.resize(static_cast<std::size_t>(table_count));
  for (auto& table : fn.jump_tables) {
    const std::uint64_t size = reader.read_u64();
    if (!reader.fits(size, 8)) return false;
    table.resize(static_cast<std::size_t>(size));
    for (std::int32_t& target : table)
      target = static_cast<std::int32_t>(reader.read_i64());
  }
  const std::uint64_t code_count = reader.read_u64();
  if (!reader.fits(code_count, 48)) return false;
  fn.code.resize(static_cast<std::size_t>(code_count));
  for (Instruction& inst : fn.code) {
    inst.op = static_cast<Opcode>(reader.read_u64());
    inst.dst = static_cast<std::uint8_t>(reader.read_u64());
    inst.src1 = static_cast<std::uint8_t>(reader.read_u64());
    inst.src2 = static_cast<std::uint8_t>(reader.read_u64());
    inst.imm = reader.read_i64();
    inst.target = static_cast<std::int32_t>(reader.read_i64());
  }
  return reader.ok;
}

void append_features(std::vector<std::uint8_t>& out,
                     const StaticFeatureVector& features) {
  append_bytes(out, features.data(), features.size() * sizeof(double));
}

bool read_features(Reader& reader, StaticFeatureVector& features) {
  return reader.read(features.data(), features.size() * sizeof(double));
}

void append_signature(std::vector<std::uint8_t>& out,
                      const DiffSignature& signature) {
  for (const int count : signature.libcall_counts) append_i64(out, count);
  append_i64(out, signature.basic_blocks);
  append_i64(out, signature.edges);
  append_i64(out, signature.cyclomatic);
  append_i64(out, signature.params);
  append_i64(out, signature.frame_size);
  append_i64(out, signature.jump_tables);
  append_i64(out, signature.string_refs);
  append_i64(out, signature.conditional_branches);
}

bool read_signature(Reader& reader, DiffSignature& signature) {
  for (int& count : signature.libcall_counts)
    count = static_cast<int>(reader.read_i64());
  signature.basic_blocks = static_cast<int>(reader.read_i64());
  signature.edges = static_cast<int>(reader.read_i64());
  signature.cyclomatic = static_cast<long>(reader.read_i64());
  signature.params = static_cast<int>(reader.read_i64());
  signature.frame_size = reader.read_i64();
  signature.jump_tables = static_cast<int>(reader.read_i64());
  signature.string_refs = static_cast<int>(reader.read_i64());
  signature.conditional_branches = static_cast<int>(reader.read_i64());
  return reader.ok;
}

void append_profile(std::vector<std::uint8_t>& out,
                    const DynamicProfile& profile) {
  append_u64(out, profile.per_env.size());
  for (const auto& features : profile.per_env) {
    append_u64(out, features.has_value() ? 1 : 0);
    if (features) append_bytes(out, &*features, sizeof(DynamicFeatures));
  }
  append_u64(out, profile.effect_hash.size());
  for (const auto& hash : profile.effect_hash) {
    append_u64(out, hash.has_value() ? 1 : 0);
    if (hash) append_u64(out, *hash);
  }
}

bool read_profile(Reader& reader, DynamicProfile& profile) {
  const std::uint64_t env_count = reader.read_u64();
  if (!reader.fits(env_count, 8)) return false;
  profile.per_env.resize(static_cast<std::size_t>(env_count));
  for (auto& features : profile.per_env) {
    if (reader.read_u64() != 0) {
      DynamicFeatures value;
      if (!reader.read(&value, sizeof(value))) return false;
      features = value;
    }
  }
  const std::uint64_t hash_count = reader.read_u64();
  if (!reader.fits(hash_count, 8)) return false;
  profile.effect_hash.resize(static_cast<std::size_t>(hash_count));
  for (auto& hash : profile.effect_hash)
    if (reader.read_u64() != 0) hash = reader.read_u64();
  return reader.ok;
}

}  // namespace

// --- LibraryArtifact -------------------------------------------------------

LibraryArtifact make_library_artifact(LibraryBinary library) {
  LibraryArtifact artifact;
  artifact.features.reserve(library.functions.size());
  artifact.codes.reserve(library.functions.size());
  for (const FunctionBinary& fn : library.functions) {
    artifact.features.push_back(extract_static_features(fn));
    artifact.codes.push_back(retrieval::quantize(artifact.features.back()));
  }
  artifact.library = std::move(library);
  return artifact;
}

std::vector<std::uint8_t> serialize_library_artifact(
    const LibraryArtifact& artifact) {
  std::vector<std::uint8_t> out;
  append_u64(out, kLibraryTag);
  append_u64(out, kPayloadVersion);
  const std::vector<std::uint8_t> library =
      serialize_library(artifact.library);
  append_u64(out, library.size());
  append_bytes(out, library.data(), library.size());
  append_u64(out, artifact.features.size());
  for (const StaticFeatureVector& features : artifact.features)
    append_features(out, features);
  append_u64(out, artifact.codes.size());
  for (const retrieval::QuantizedVector& code : artifact.codes)
    append_bytes(out, code.codes.data(), code.codes.size());
  return out;
}

std::optional<LibraryArtifact> deserialize_library_artifact(
    const std::vector<std::uint8_t>& bytes) {
  Reader reader{bytes};
  if (reader.read_u64() != kLibraryTag ||
      reader.read_u64() != kPayloadVersion)
    return std::nullopt;
  const std::uint64_t library_size = reader.read_u64();
  if (!reader.fits(library_size, 1)) return std::nullopt;
  std::vector<std::uint8_t> library_bytes(
      static_cast<std::size_t>(library_size));
  if (!reader.read(library_bytes.data(), library_bytes.size()))
    return std::nullopt;
  LibraryArtifact artifact;
  try {
    artifact.library = deserialize_library(library_bytes);
  } catch (const std::exception&) {
    return std::nullopt;  // corrupt nested container degrades to a miss
  }
  const std::uint64_t feature_count = reader.read_u64();
  if (!reader.fits(feature_count, static_feature_count * sizeof(double)))
    return std::nullopt;
  artifact.features.resize(static_cast<std::size_t>(feature_count));
  for (StaticFeatureVector& features : artifact.features)
    if (!read_features(reader, features)) return std::nullopt;
  const std::uint64_t code_count = reader.read_u64();
  if (!reader.fits(code_count, static_feature_count)) return std::nullopt;
  artifact.codes.resize(static_cast<std::size_t>(code_count));
  for (retrieval::QuantizedVector& code : artifact.codes)
    if (!reader.read(code.codes.data(), code.codes.size()))
      return std::nullopt;
  if (!reader.ok || reader.pos != bytes.size() ||
      artifact.features.size() != artifact.library.functions.size() ||
      artifact.codes.size() != artifact.library.functions.size())
    return std::nullopt;
  return artifact;
}

// --- CveEntry --------------------------------------------------------------

std::vector<std::uint8_t> serialize_cve_entry(const CveEntry& entry) {
  std::vector<std::uint8_t> out;
  append_u64(out, kEntryTag);
  append_u64(out, kPayloadVersion);
  append_string(out, entry.spec.cve_id);
  append_string(out, entry.spec.library);
  append_u64(out, static_cast<std::uint64_t>(entry.spec.kind));
  append_u64(out, entry.library_index);
  append_u64(out, entry.slot);
  append_u64(out, entry.target_uid);
  append_function(out, entry.vulnerable_binary);
  append_function(out, entry.patched_binary);
  append_features(out, entry.vulnerable_features);
  append_features(out, entry.patched_features);
  append_signature(out, entry.vulnerable_signature);
  append_signature(out, entry.patched_signature);
  append_u64(out, entry.environments.size());
  for (const CallEnv& env : entry.environments) {
    append_u64(out, env.args.size());
    for (const Value& arg : env.args) {
      append_u64(out, static_cast<std::uint64_t>(arg.type));
      append_i64(out, arg.i);
      append_double(out, arg.f);
      append_i64(out, arg.buffer);
      append_i64(out, arg.offset);
    }
    append_u64(out, env.buffers.size());
    for (const std::vector<std::uint8_t>& buffer : env.buffers) {
      append_u64(out, buffer.size());
      append_bytes(out, buffer.data(), buffer.size());
    }
  }
  append_profile(out, entry.vulnerable_profile);
  append_profile(out, entry.patched_profile);
  append_u64(out, entry.arch_refs.size());
  for (const auto& [arch, refs] : entry.arch_refs) {
    append_u64(out, static_cast<std::uint64_t>(arch));
    append_features(out, refs.vulnerable_features);
    append_features(out, refs.patched_features);
    append_signature(out, refs.vulnerable_signature);
    append_signature(out, refs.patched_signature);
    append_profile(out, refs.vulnerable_profile);
    append_profile(out, refs.patched_profile);
  }
  return out;
}

std::optional<CveEntry> deserialize_cve_entry(
    const std::vector<std::uint8_t>& bytes) {
  Reader reader{bytes};
  if (reader.read_u64() != kEntryTag || reader.read_u64() != kPayloadVersion)
    return std::nullopt;
  CveEntry entry;
  entry.spec.cve_id = reader.read_string();
  entry.spec.library = reader.read_string();
  entry.spec.kind = static_cast<PatchKind>(reader.read_u64());
  entry.library_index = static_cast<std::size_t>(reader.read_u64());
  entry.slot = static_cast<std::size_t>(reader.read_u64());
  entry.target_uid = reader.read_u64();
  if (!read_function(reader, entry.vulnerable_binary)) return std::nullopt;
  if (!read_function(reader, entry.patched_binary)) return std::nullopt;
  if (!read_features(reader, entry.vulnerable_features)) return std::nullopt;
  if (!read_features(reader, entry.patched_features)) return std::nullopt;
  if (!read_signature(reader, entry.vulnerable_signature))
    return std::nullopt;
  if (!read_signature(reader, entry.patched_signature)) return std::nullopt;
  const std::uint64_t env_count = reader.read_u64();
  if (!reader.fits(env_count, 16)) return std::nullopt;
  entry.environments.resize(static_cast<std::size_t>(env_count));
  for (CallEnv& env : entry.environments) {
    const std::uint64_t arg_count = reader.read_u64();
    if (!reader.fits(arg_count, 40)) return std::nullopt;
    env.args.resize(static_cast<std::size_t>(arg_count));
    for (Value& arg : env.args) {
      arg.type = static_cast<ValueType>(reader.read_u64());
      arg.i = reader.read_i64();
      arg.f = reader.read_double();
      arg.buffer = static_cast<int>(reader.read_i64());
      arg.offset = reader.read_i64();
    }
    const std::uint64_t buffer_count = reader.read_u64();
    if (!reader.fits(buffer_count, 8)) return std::nullopt;
    env.buffers.resize(static_cast<std::size_t>(buffer_count));
    for (std::vector<std::uint8_t>& buffer : env.buffers) {
      const std::uint64_t size = reader.read_u64();
      if (!reader.fits(size, 1)) return std::nullopt;
      buffer.resize(static_cast<std::size_t>(size));
      if (!reader.read(buffer.data(), buffer.size())) return std::nullopt;
    }
  }
  if (!read_profile(reader, entry.vulnerable_profile)) return std::nullopt;
  if (!read_profile(reader, entry.patched_profile)) return std::nullopt;
  const std::uint64_t arch_count = reader.read_u64();
  if (!reader.fits(arch_count, 8)) return std::nullopt;
  for (std::uint64_t i = 0; i < arch_count; ++i) {
    const Arch arch = static_cast<Arch>(reader.read_u64());
    ArchRefs refs;
    if (!read_features(reader, refs.vulnerable_features))
      return std::nullopt;
    if (!read_features(reader, refs.patched_features)) return std::nullopt;
    if (!read_signature(reader, refs.vulnerable_signature))
      return std::nullopt;
    if (!read_signature(reader, refs.patched_signature)) return std::nullopt;
    if (!read_profile(reader, refs.vulnerable_profile)) return std::nullopt;
    if (!read_profile(reader, refs.patched_profile)) return std::nullopt;
    entry.arch_refs.emplace(arch, std::move(refs));
  }
  if (!reader.ok || reader.pos != bytes.size()) return std::nullopt;
  return entry;
}

}  // namespace patchecko::corpus
