// Payload serialization for prebuilt-corpus artifacts.
//
// Two artifact kinds live in the store (store.h):
//   * a LibraryArtifact — one compiled library plus the per-function static
//     features and quantizer codes the retrieval index consumes, so a warm
//     load skips compilation *and* feature extraction; and
//   * a CveEntry — everything the online pipeline reads for one CVE
//     (reference binaries, features, signatures, fuzzed environments,
//     dynamic profiles, per-arch reference sets).
//
// Deserializers return nullopt on any malformed or truncated input: a
// corrupt store object degrades to a cache miss and a rebuild, never UB.
// Like the PR 1 result cache, payloads are host-local native-endian
// artifacts, not an interchange format.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cve_database.h"
#include "retrieval/quantizer.h"

namespace patchecko::corpus {

/// A compiled library ready for index build: binaries + features + codes,
/// index-aligned with `library.functions`.
struct LibraryArtifact {
  LibraryBinary library;
  std::vector<StaticFeatureVector> features;
  std::vector<retrieval::QuantizedVector> codes;
};

std::vector<std::uint8_t> serialize_library_artifact(
    const LibraryArtifact& artifact);
std::optional<LibraryArtifact> deserialize_library_artifact(
    const std::vector<std::uint8_t>& bytes);

/// Builds the artifact for a compiled library (features + quantizer codes
/// extracted here so every store producer agrees on the derivation).
LibraryArtifact make_library_artifact(LibraryBinary library);

std::vector<std::uint8_t> serialize_cve_entry(const CveEntry& entry);
std::optional<CveEntry> deserialize_cve_entry(
    const std::vector<std::uint8_t>& bytes);

}  // namespace patchecko::corpus
