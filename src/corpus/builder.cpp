#include "corpus/builder.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "compiler/compiler.h"
#include "corpus/serialize.h"
#include "obs/metrics.h"
#include "source/fingerprint.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace patchecko::corpus {

namespace {

std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

std::string hex_u64(std::uint64_t value) {
  char out[17] = {};
  std::snprintf(out, sizeof(out), "%016llx",
                static_cast<unsigned long long>(value));
  return out;
}

/// %.17g round-trips every double bit-exactly, so two processes render the
/// same scale to the same params string.
std::string fmt_double(double value) {
  char out[40] = {};
  std::snprintf(out, sizeof(out), "%.17g", value);
  return out;
}

std::string eval_params(const EvalConfig& eval) {
  return "scale=" + fmt_double(eval.scale) + " seed=" + hex_u64(eval.seed);
}

/// Every DatabaseConfig / FuzzConfig / MachineConfig field that can change
/// a built entry. A new knob added without extending this string would
/// silently serve stale entries — keep it exhaustive.
std::string database_params(const DatabaseConfig& config) {
  std::string arches;
  for (const Arch arch : config.ref_arches) {
    if (!arches.empty()) arches += ",";
    arches += std::string(arch_name(arch));
  }
  return "dbseed=" + hex_u64(config.seed) + " ref_opt=" +
         std::string(opt_level_name(config.ref_opt)) + " ref_arches=" +
         arches + " fuzz=" + std::to_string(config.fuzz.env_count) + "," +
         std::to_string(config.fuzz.attempts) + "," +
         std::to_string(config.fuzz.min_buffer) + "," +
         std::to_string(config.fuzz.max_buffer) + " vm=" +
         std::to_string(config.fuzz.machine.step_limit) + "," +
         std::to_string(config.fuzz.machine.stack_size) + "," +
         std::to_string(config.fuzz.machine.max_call_depth) + "," +
         (config.fuzz.machine.collect_features ? "1" : "0");
}

/// The cold CveDatabase build order: libraries ascending, hosted CVEs in
/// corpus order within each library. Every caller that walks entries MUST
/// use this order — it defines each entry's index and thus its fuzz rng.
std::vector<const HostedCve*> entries_in_build_order(
    const EvalCorpus& corpus) {
  std::vector<const HostedCve*> ordered;
  for (std::size_t lib = 0; lib < corpus.library_specs().size(); ++lib)
    for (const HostedCve& cve : corpus.hosted_cves())
      if (cve.library_index == lib) ordered.push_back(&cve);
  return ordered;
}

LibraryBinary compile_variant(const EvalCorpus& corpus, std::size_t lib,
                              Arch arch, OptLevel opt) {
  return compile_library(corpus.vulnerable_source(lib), arch, opt,
                         corpus.uid_base(lib));
}

obs::Histogram& build_seconds_histogram() {
  return obs::Registry::global().histogram("corpus.store.build_seconds");
}

/// Loads the reference library for `lib` from its (db_arch, db_opt) store
/// cell, compiling (and storing) it on a miss.
LibraryBinary reference_for(PrebuiltStore& store, const EvalCorpus& corpus,
                            std::size_t lib) {
  const ArtifactKey key = library_variant_key(
      corpus, lib, corpus.config().db_arch, corpus.config().db_opt);
  if (const auto bytes = store.load(key)) {
    if (auto artifact = deserialize_library_artifact(*bytes))
      return std::move(artifact->library);
  }
  LibraryArtifact artifact =
      make_library_artifact(corpus.compile_reference(lib));
  store.put(key, serialize_library_artifact(artifact));
  return std::move(artifact.library);
}

}  // namespace

ArtifactKey library_variant_key(const EvalCorpus& corpus, std::size_t lib,
                                Arch arch, OptLevel opt) {
  ArtifactKey key;
  key.kind = "library";
  key.source_fingerprint =
      fingerprint_library(corpus.vulnerable_source(lib));
  key.arch = arch;
  key.opt = opt;
  key.compiler_version = kCompilerVersion;
  key.params = "lib=" + std::to_string(lib) + " " +
               eval_params(corpus.config());
  return key;
}

ArtifactKey entry_key(const EvalCorpus& corpus, const HostedCve& cve,
                      std::size_t entry_index,
                      const DatabaseConfig& config) {
  ArtifactKey key;
  key.kind = "entry";
  key.source_fingerprint = combine(
      fingerprint_library(corpus.vulnerable_source(cve.library_index)),
      fingerprint_function(cve.pair.patched));
  key.arch = corpus.config().db_arch;
  key.opt = corpus.config().db_opt;
  key.compiler_version = kCompilerVersion;
  key.params = "cve=" + cve.spec.cve_id + " entry=" +
               std::to_string(entry_index) + " slot=" +
               std::to_string(cve.slot) + " " +
               eval_params(corpus.config()) + " " + database_params(config);
  return key;
}

BuildReport build_store(PrebuiltStore& store, const BuildMatrix& matrix) {
  const Stopwatch watch;
  BuildReport report;
  store.begin_generation();
  const EvalCorpus corpus(matrix.eval);

  // The library cell matrix, always including the database reference cell.
  std::vector<Arch> arches =
      matrix.arches.empty() ? std::vector<Arch>{matrix.eval.db_arch}
                            : matrix.arches;
  std::vector<OptLevel> opts =
      matrix.opts.empty() ? std::vector<OptLevel>{matrix.eval.db_opt}
                          : matrix.opts;
  std::vector<std::pair<Arch, OptLevel>> cells;
  for (const Arch arch : arches)
    for (const OptLevel opt : opts) cells.emplace_back(arch, opt);
  const std::pair<Arch, OptLevel> reference_cell{matrix.eval.db_arch,
                                                 matrix.eval.db_opt};
  if (std::find(cells.begin(), cells.end(), reference_cell) == cells.end())
    cells.push_back(reference_cell);

  struct LibraryJob {
    std::size_t lib;
    Arch arch;
    OptLevel opt;
    ArtifactKey key;
  };
  std::vector<LibraryJob> missing_libraries;
  for (std::size_t lib = 0; lib < corpus.library_specs().size(); ++lib) {
    for (const auto& [arch, opt] : cells) {
      ArtifactKey key = library_variant_key(corpus, lib, arch, opt);
      ++report.requested;
      ++report.library_artifacts;
      if (store.contains(key)) {
        store.touch(key);
        ++report.reused;
      } else {
        missing_libraries.push_back({lib, arch, opt, std::move(key)});
      }
    }
  }
  parallel_for(missing_libraries.size(), matrix.jobs, [&](std::size_t i) {
    const LibraryJob& job = missing_libraries[i];
    const LibraryArtifact artifact = make_library_artifact(
        compile_variant(corpus, job.lib, job.arch, job.opt));
    store.put(job.key, serialize_library_artifact(artifact));
  });
  report.built += missing_libraries.size();

  // Entry artifacts. The rng fork walk is serial by construction (fork
  // advances the parent), so keys and streams are computed in build order
  // first; only the missing builds fan out on the pool.
  struct EntryJob {
    const HostedCve* cve;
    Rng fuzz_rng;
    ArtifactKey key;
  };
  std::vector<EntryJob> missing_entries;
  Rng rng(matrix.database.seed);
  const std::vector<const HostedCve*> ordered = entries_in_build_order(corpus);
  for (std::size_t index = 0; index < ordered.size(); ++index) {
    Rng fuzz_rng = rng.fork(0xF022 + index);
    ArtifactKey key =
        entry_key(corpus, *ordered[index], index, matrix.database);
    ++report.requested;
    ++report.entry_artifacts;
    if (store.contains(key)) {
      store.touch(key);
      ++report.reused;
    } else {
      missing_entries.push_back({ordered[index], fuzz_rng, std::move(key)});
    }
  }
  // One reference library per distinct host library, loaded (or built)
  // before the parallel section so workers share it read-only.
  std::map<std::size_t, LibraryBinary> references;
  for (const EntryJob& job : missing_entries)
    if (references.find(job.cve->library_index) == references.end())
      references.emplace(job.cve->library_index,
                         reference_for(store, corpus,
                                       job.cve->library_index));
  parallel_for(missing_entries.size(), matrix.jobs, [&](std::size_t i) {
    const EntryJob& job = missing_entries[i];
    const CveEntry entry =
        build_cve_entry(corpus, *job.cve,
                        references.at(job.cve->library_index),
                        matrix.database, job.fuzz_rng);
    store.put(job.key, serialize_cve_entry(entry));
  });
  report.built += missing_entries.size();

  store.flush();
  report.build_seconds = watch.elapsed_seconds();
  build_seconds_histogram().record(report.build_seconds);
  return report;
}

CveDatabase load_database(PrebuiltStore& store, const EvalCorpus& corpus,
                          const DatabaseConfig& config,
                          SnapshotLoadStats* stats) {
  std::vector<CveEntry> entries;
  Rng rng(config.seed);
  // Cold-build fallbacks compile their reference library at most once per
  // host library.
  std::map<std::size_t, LibraryBinary> references;
  const std::vector<const HostedCve*> ordered = entries_in_build_order(corpus);
  entries.reserve(ordered.size());
  for (std::size_t index = 0; index < ordered.size(); ++index) {
    const HostedCve& cve = *ordered[index];
    // Forked unconditionally: entry N+1's stream depends on the parent rng
    // having advanced through entry N, warm or cold.
    Rng fuzz_rng = rng.fork(0xF022 + index);
    const ArtifactKey key = entry_key(corpus, cve, index, config);
    if (const auto bytes = store.load(key)) {
      if (auto entry = deserialize_cve_entry(*bytes)) {
        entries.push_back(std::move(*entry));
        if (stats != nullptr) ++stats->entries_loaded;
        continue;
      }
    }
    // Miss or corrupt object: rebuild this entry cold and heal the store.
    auto reference = references.find(cve.library_index);
    if (reference == references.end())
      reference = references
                      .emplace(cve.library_index,
                               reference_for(store, corpus,
                                             cve.library_index))
                      .first;
    CveEntry entry = build_cve_entry(corpus, cve, reference->second, config,
                                     fuzz_rng);
    store.put(key, serialize_cve_entry(entry));
    if (stats != nullptr) ++stats->entries_built;
    entries.push_back(std::move(entry));
  }
  store.flush();
  return CveDatabase(std::move(entries));
}

std::shared_ptr<const CorpusSnapshot> load_snapshot(
    PrebuiltStore& store, std::uint64_t version, const EvalConfig& eval,
    const DatabaseConfig& config, SnapshotLoadStats* stats) {
  const Stopwatch watch;
  EvalCorpus corpus(eval);
  CveDatabase database = load_database(store, corpus, config, stats);
  build_seconds_histogram().record(watch.elapsed_seconds());
  return std::make_shared<const CorpusSnapshot>(
      version, eval, config, std::move(corpus), std::move(database));
}

CorpusStore::SnapshotBuilder store_backed_builder(
    std::shared_ptr<PrebuiltStore> store) {
  return [store](std::uint64_t version, const EvalConfig& eval,
                 const DatabaseConfig& config) {
    return load_snapshot(*store, version, eval, config);
  };
}

}  // namespace patchecko::corpus
