// Content-addressed on-disk store of prebuilt corpus artifacts.
//
// Every scan, bench and CI run used to rebuild the evaluation corpus and
// CVE database from MiniC source through the whole compiler/fuzzer/profiler
// pipeline — the single biggest wall-clock cost in the repo (ROADMAP item
// 4). The store persists those build products once and serves them back
// content-addressed: an artifact is keyed by
//   (kind, source fingerprint, arch, opt level, compiler version,
//    generator params)
// so any input change — different source ASTs, a compiler bump, another
// fuzz budget — misses and rebuilds, while an unchanged matrix is served
// without touching the compiler at all.
//
// Disk layout (PR 1 result-cache idioms: sharded hash dirs, write-to-temp +
// atomic rename, version-stamped headers):
//   <root>/store.json              manifest (deterministic JSON)
//   <root>/objects/<hh>/<hex>.bin  one artifact container per key digest
//
// Container format ("PKCS"): magic, format version, the full key echoed
// back, payload length, payload, then a 128-bit payload digest. load()
// re-derives the expected key and digest, so a swapped, truncated or
// bit-flipped object degrades to a miss (cache-poisoning guard) — the
// caller rebuilds and overwrites.
//
// The manifest tracks a monotonically increasing build generation; every
// key a `corpus build` run requests (hit or miss) is stamped with that
// run's generation, and gc() drops whatever the latest build no longer
// referenced.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/cache.h"
#include "isa/isa.h"

namespace patchecko::corpus {

/// Identity of one prebuilt artifact. `params` is a canonical human-readable
/// rendering of every generator input not covered by the other fields
/// (seeds, fuzz budgets, entry index, ...): two producers that disagree on
/// any byte of it address different objects.
struct ArtifactKey {
  std::string kind;  ///< "library" | "entry"
  std::uint64_t source_fingerprint = 0;  ///< fingerprint_library + extras
  Arch arch = Arch::amd64;
  OptLevel opt = OptLevel::O2;
  std::uint64_t compiler_version = 0;  ///< kCompilerVersion at build time
  std::string params;

  friend bool operator==(const ArtifactKey& a, const ArtifactKey& b) {
    return a.kind == b.kind && a.source_fingerprint == b.source_fingerprint &&
           a.arch == b.arch && a.opt == b.opt &&
           a.compiler_version == b.compiler_version && a.params == b.params;
  }
  friend bool operator!=(const ArtifactKey& a, const ArtifactKey& b) {
    return !(a == b);
  }
};

/// 128-bit address of the key (object filename = digest.hex()).
Digest key_digest(const ArtifactKey& key);
/// Canonical one-line rendering for manifests and error messages.
std::string key_to_string(const ArtifactKey& key);

/// Per-store lifetime counters plus manifest totals.
struct StoreStats {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;       ///< summed container sizes (manifest)
  std::uint64_t generation = 0;  ///< latest build generation
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t gc_reclaimed_bytes = 0;
};

struct VerifyIssue {
  std::string object;  ///< object hex (or relative path for orphans)
  std::string key;     ///< key_to_string of the manifest entry, if known
  std::string detail;
};

struct GcResult {
  std::uint64_t removed_objects = 0;
  std::uint64_t reclaimed_bytes = 0;
};

/// Thread-safe store handle. Object reads/writes are safe across processes
/// too (atomic rename-into-place); the manifest is last-writer-wins, which
/// is fine because any object a racing manifest forgot is re-adopted (or
/// reported as an orphan by verify()) rather than misread.
class PrebuiltStore {
 public:
  explicit PrebuiltStore(std::string root);

  const std::string& root() const { return root_; }
  std::uint64_t generation() const;

  /// Manifest-level membership plus an on-disk existence check (a manifest
  /// that lies about a deleted object must not count as warm).
  bool contains(const ArtifactKey& key) const;

  /// Returns the payload, or nullopt on miss, truncation, bit-flip, or a
  /// key echo that does not match `key` (poisoning guard). A failed load
  /// counts as a miss; the caller rebuilds and put()s.
  std::optional<std::vector<std::uint8_t>> load(const ArtifactKey& key);

  /// Serializes `payload` into a container and renames it into place.
  void put(const ArtifactKey& key, const std::vector<std::uint8_t>& payload);

  /// Stamps the key's manifest entry with the current generation (liveness
  /// for gc). Called for hits; put() stamps implicitly.
  void touch(const ArtifactKey& key);

  /// Bumps the build generation; artifacts not touched afterwards become
  /// gc-eligible once flush()ed.
  std::uint64_t begin_generation();

  /// Writes store.json atomically. Returns false on IO failure.
  bool flush();

  /// Full integrity pass: every manifest entry must exist on disk, parse,
  /// match its recorded size, echo the key it is filed under, and carry a
  /// payload digest that matches the payload bytes; every on-disk object
  /// must appear in the manifest. Returns the first problem found (in
  /// sorted object order, so failures are deterministic) or nullopt.
  std::optional<VerifyIssue> verify();

  /// Drops manifest entries whose generation predates the current one plus
  /// on-disk orphans. With dry_run the store is not modified.
  GcResult gc(bool dry_run);

  StoreStats stats() const;

  /// One JSON object rendering stats() plus the store root — the
  /// `corpus_store` block in the serve daemon's health/stats payloads and
  /// the `corpus stats --json` output.
  std::string stats_json() const;

 private:
  struct ManifestEntry {
    std::string key;  ///< key_to_string rendering
    std::string kind;
    std::uint64_t bytes = 0;
    std::uint64_t generation = 0;
  };

  std::string object_path(const std::string& hex) const;
  void read_manifest();
  std::vector<std::pair<std::string, std::string>> disk_objects() const;

  std::string root_;
  mutable std::mutex mutex_;
  // hex digest -> manifest entry; kept sorted on flush for deterministic
  // manifests (std::map iterates in key order).
  std::map<std::string, ManifestEntry> entries_;
  std::uint64_t generation_ = 0;
  bool manifest_parse_failed_ = false;
  StoreStats counters_;  ///< hits/misses/stores/gc for this handle
};

}  // namespace patchecko::corpus
