#include "isa/isa.h"

#include <sstream>

namespace patchecko {

std::string_view arch_name(Arch arch) {
  switch (arch) {
    case Arch::x86: return "x86";
    case Arch::amd64: return "amd64";
    case Arch::arm32: return "arm32";
    case Arch::arm64: return "arm64";
  }
  return "unknown";
}

std::string_view opt_level_name(OptLevel level) {
  switch (level) {
    case OptLevel::O0: return "O0";
    case OptLevel::O1: return "O1";
    case OptLevel::O2: return "O2";
    case OptLevel::O3: return "O3";
    case OptLevel::Oz: return "Oz";
    case OptLevel::Ofast: return "Ofast";
  }
  return "unknown";
}

int register_count(Arch arch) {
  switch (arch) {
    case Arch::x86: return 8;
    case Arch::amd64: return 16;
    case Arch::arm32: return 12;
    case Arch::arm64: return 28;
  }
  return 8;
}

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::mov: return "mov";
    case Opcode::ldi: return "ldi";
    case Opcode::ldstr: return "ldstr";
    case Opcode::load: return "load";
    case Opcode::loadb: return "loadb";
    case Opcode::store: return "store";
    case Opcode::storeb: return "storeb";
    case Opcode::push: return "push";
    case Opcode::pop: return "pop";
    case Opcode::add: return "add";
    case Opcode::sub: return "sub";
    case Opcode::mul: return "mul";
    case Opcode::divi: return "div";
    case Opcode::modi: return "mod";
    case Opcode::neg: return "neg";
    case Opcode::andi: return "and";
    case Opcode::ori: return "or";
    case Opcode::xori: return "xor";
    case Opcode::shl: return "shl";
    case Opcode::shr: return "shr";
    case Opcode::cmp: return "cmp";
    case Opcode::fadd: return "fadd";
    case Opcode::fsub: return "fsub";
    case Opcode::fmul: return "fmul";
    case Opcode::fdiv: return "fdiv";
    case Opcode::fneg: return "fneg";
    case Opcode::cvtif: return "cvtif";
    case Opcode::cvtfi: return "cvtfi";
    case Opcode::jmp: return "jmp";
    case Opcode::beq: return "beq";
    case Opcode::bne: return "bne";
    case Opcode::blt: return "blt";
    case Opcode::bge: return "bge";
    case Opcode::bgt: return "bgt";
    case Opcode::ble: return "ble";
    case Opcode::jmpi: return "jmpi";
    case Opcode::call: return "call";
    case Opcode::callr: return "callr";
    case Opcode::ret: return "ret";
    case Opcode::libcall: return "libcall";
    case Opcode::syscall: return "syscall";
    case Opcode::frame: return "frame";
    case Opcode::nop: return "nop";
  }
  return "unknown";
}

bool is_int_arith(Opcode op) {
  switch (op) {
    case Opcode::add: case Opcode::sub: case Opcode::mul:
    case Opcode::divi: case Opcode::modi: case Opcode::neg:
    case Opcode::andi: case Opcode::ori: case Opcode::xori:
    case Opcode::shl: case Opcode::shr: case Opcode::cmp:
      return true;
    default:
      return false;
  }
}

bool is_fp_arith(Opcode op) {
  switch (op) {
    case Opcode::fadd: case Opcode::fsub: case Opcode::fmul:
    case Opcode::fdiv: case Opcode::fneg: case Opcode::cvtif:
    case Opcode::cvtfi:
      return true;
    default:
      return false;
  }
}

bool is_arith(Opcode op) { return is_int_arith(op) || is_fp_arith(op); }

bool is_conditional_branch(Opcode op) {
  switch (op) {
    case Opcode::beq: case Opcode::bne: case Opcode::blt:
    case Opcode::bge: case Opcode::bgt: case Opcode::ble:
      return true;
    default:
      return false;
  }
}

bool is_branch(Opcode op) {
  return is_conditional_branch(op) || op == Opcode::jmp || op == Opcode::jmpi;
}

bool is_call(Opcode op) { return op == Opcode::call || op == Opcode::callr; }

bool is_load(Opcode op) {
  return op == Opcode::load || op == Opcode::loadb || op == Opcode::pop;
}

bool is_store(Opcode op) {
  return op == Opcode::store || op == Opcode::storeb || op == Opcode::push;
}

bool is_terminator(Opcode op) {
  return op == Opcode::jmp || op == Opcode::jmpi || op == Opcode::ret;
}

std::string_view libfn_name(LibFn fn) {
  switch (fn) {
    case LibFn::memmove: return "memmove";
    case LibFn::memcpy: return "memcpy";
    case LibFn::memset: return "memset";
    case LibFn::strlen: return "strlen";
    case LibFn::strcmp: return "strcmp";
    case LibFn::strcpy: return "strcpy";
    case LibFn::malloc: return "malloc";
    case LibFn::free: return "free";
    case LibFn::abs64: return "abs64";
    case LibFn::imin: return "imin";
    case LibFn::imax: return "imax";
    case LibFn::clamp: return "clamp";
    case LibFn::fsqrt: return "fsqrt";
    case LibFn::fpow: return "fpow";
    case LibFn::ffloor: return "ffloor";
    case LibFn::crc32: return "crc32";
    case LibFn::byte_swap: return "byte_swap";
    case LibFn::checked_add: return "checked_add";
    case LibFn::count: break;
  }
  return "unknown";
}

std::string_view sys_name(Sys sys) {
  switch (sys) {
    case Sys::sys_write: return "write";
    case Sys::sys_read: return "read";
    case Sys::sys_getpid: return "getpid";
    case Sys::sys_time: return "time";
    case Sys::sys_mmap: return "mmap";
    case Sys::sys_log: return "log";
    case Sys::count: break;
  }
  return "unknown";
}

namespace {

// Width in bytes of the smallest signed immediate encoding.
int imm_width(std::int64_t imm) {
  if (imm >= -128 && imm < 128) return 1;
  if (imm >= -32768 && imm < 32768) return 2;
  if (imm >= -(1LL << 31) && imm < (1LL << 31)) return 4;
  return 8;
}

}  // namespace

int encoded_size(const Instruction& inst, Arch arch) {
  switch (arch) {
    case Arch::arm32:
      // movw/movt pair for immediates beyond 16 bits.
      return imm_width(inst.imm) > 2 ? 8 : 4;
    case Arch::arm64:
      // Large immediates need a second move-wide instruction slot.
      return imm_width(inst.imm) > 2 ? 8 : 4;
    case Arch::x86:
    case Arch::amd64: {
      int size = 2;  // opcode + modrm
      if (arch == Arch::amd64) size += 1;  // REX-style prefix
      switch (inst.op) {
        case Opcode::ldi:
        case Opcode::ldstr:
        case Opcode::load:
        case Opcode::loadb:
        case Opcode::store:
        case Opcode::storeb:
        case Opcode::frame:
        case Opcode::libcall:
        case Opcode::syscall:
          size += imm_width(inst.imm);
          break;
        case Opcode::jmp:
        case Opcode::beq: case Opcode::bne: case Opcode::blt:
        case Opcode::bge: case Opcode::bgt: case Opcode::ble:
        case Opcode::call:
          size += 4;  // rel32 displacement
          break;
        default:
          break;
      }
      return size;
    }
  }
  return 4;
}

std::string to_string(const Instruction& inst) {
  std::ostringstream out;
  out << opcode_name(inst.op);
  auto reg_name = [](std::uint8_t r) -> std::string {
    if (r == reg::sp) return "sp";
    if (r == reg::fp) return "fp";
    if (r == reg::none) return "_";
    return "r" + std::to_string(static_cast<int>(r));
  };
  out << " d=" << reg_name(inst.dst) << " a=" << reg_name(inst.src1)
      << " b=" << reg_name(inst.src2);
  if (inst.imm != 0) out << " imm=" << inst.imm;
  if (inst.target >= 0) out << " ->" << inst.target;
  return out.str();
}

}  // namespace patchecko
