// Synthetic instruction-set architecture.
//
// The paper's corpus is real Android libraries compiled by Clang for x86,
// amd64, ARM 32-bit and ARM 64-bit at six optimization levels. We reproduce
// that variation with a compact register-machine ISA that has per-architecture
// register files and per-architecture instruction encodings, so the same
// source function genuinely produces different binaries per target — the
// property the deep-learning stage must learn to see through.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace patchecko {

/// Target architectures, matching the paper's evaluation matrix.
enum class Arch : std::uint8_t { x86 = 0, amd64 = 1, arm32 = 2, arm64 = 3 };

constexpr std::array<Arch, 4> all_arches{Arch::x86, Arch::amd64, Arch::arm32,
                                         Arch::arm64};

std::string_view arch_name(Arch arch);

/// Compiler optimization levels, matching the paper's -O0..-Ofast sweep.
enum class OptLevel : std::uint8_t { O0 = 0, O1, O2, O3, Oz, Ofast };

constexpr std::array<OptLevel, 6> all_opt_levels{
    OptLevel::O0, OptLevel::O1, OptLevel::O2,
    OptLevel::O3, OptLevel::Oz, OptLevel::Ofast};

std::string_view opt_level_name(OptLevel level);

/// Number of allocatable general-purpose registers per architecture. The
/// spread drives realistic spill behaviour on register-poor targets.
int register_count(Arch arch);

/// Distinguished register indices understood by the VM; they are outside
/// every architecture's allocatable range.
namespace reg {
constexpr std::uint8_t sp = 254;    ///< stack pointer
constexpr std::uint8_t fp = 255;    ///< frame pointer
constexpr std::uint8_t none = 253;  ///< "no register" operand marker
}  // namespace reg

enum class Opcode : std::uint8_t {
  // Data movement
  mov,    ///< dst <- src1
  ldi,    ///< dst <- imm
  ldstr,  ///< dst <- address of string-pool entry imm
  load,   ///< dst <- mem64[src1 + imm]
  loadb,  ///< dst <- mem8[src1 + imm] (zero extended)
  store,  ///< mem64[src1 + imm] <- src2
  storeb, ///< mem8[src1 + imm] <- low byte of src2
  push,   ///< push src1
  pop,    ///< pop into dst
  // Integer arithmetic / logic
  add, sub, mul, divi, modi, neg,
  andi, ori, xori, shl, shr,
  // Comparison: dst <- (src1 ? src2) producing -1/0/1
  cmp,
  // Floating point (registers hold raw IEEE-754 bit patterns)
  fadd, fsub, fmul, fdiv, fneg, cvtif, cvtfi,
  // Control flow; `target` is an instruction index within the function
  jmp,
  beq, bne, blt, bge, bgt, ble,  ///< conditional on src1 (cmp result)
  jmpi,   ///< indirect jump via jump table `imm`, index in src1
  call,   ///< direct call, callee id in imm
  callr,  ///< indirect call through src1
  ret,    ///< return, value in r0
  // Runtime interface
  libcall,  ///< imm = LibFn, arguments in r0..r3, result in r0
  syscall,  ///< imm = Sys, arguments in r0..r1, result in r0
  // Misc
  frame,  ///< establish a stack frame of imm bytes
  nop,
};

std::string_view opcode_name(Opcode op);

/// Instruction classification used by both the static (Table I) and dynamic
/// (Table II) feature extractors.
bool is_int_arith(Opcode op);
bool is_fp_arith(Opcode op);
bool is_arith(Opcode op);  ///< integer or floating point
bool is_branch(Opcode op); ///< conditional branches + jmp + jmpi
bool is_conditional_branch(Opcode op);
bool is_call(Opcode op);   ///< call, callr (libcall/syscall are separate)
bool is_load(Opcode op);
bool is_store(Opcode op);
/// True when control does not fall through to the next instruction.
bool is_terminator(Opcode op);

/// Runtime library functions implemented by the VM (the paper's imported
/// libc symbols; e.g. the memmove that the CVE-2018-9412 patch removes).
enum class LibFn : std::uint8_t {
  memmove = 0, memcpy, memset, strlen, strcmp, strcpy,
  malloc, free, abs64, imin, imax, clamp,
  fsqrt, fpow, ffloor, crc32, byte_swap, checked_add,
  count,
};

std::string_view libfn_name(LibFn fn);
constexpr std::size_t libfn_count = static_cast<std::size_t>(LibFn::count);

/// Kernel interface reached through `syscall`.
enum class Sys : std::uint8_t {
  sys_write = 0, sys_read, sys_getpid, sys_time, sys_mmap, sys_log,
  count,
};

std::string_view sys_name(Sys sys);

/// One machine instruction. `dst/src1/src2` index the register file (or
/// reg::sp / reg::fp / reg::none); `imm` carries immediates, memory offsets,
/// string ids, jump-table ids, callee ids, LibFn/Sys ids; `target` carries
/// branch destinations as instruction indices.
struct Instruction {
  Opcode op = Opcode::nop;
  std::uint8_t dst = reg::none;
  std::uint8_t src1 = reg::none;
  std::uint8_t src2 = reg::none;
  std::int64_t imm = 0;
  std::int32_t target = -1;

  bool operator==(const Instruction&) const = default;
};

/// Byte size of `inst` when encoded for `arch`. ARM targets are fixed-width;
/// x86 targets are variable-width with immediates widening the encoding.
/// These sizes feed the size-based static features (size_fun, min/max/avg
/// size of basic block).
int encoded_size(const Instruction& inst, Arch arch);

/// Human-readable rendering for debugging and the example binaries.
std::string to_string(const Instruction& inst);

}  // namespace patchecko
