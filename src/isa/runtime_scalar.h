// Scalar runtime-library semantics shared verbatim by the reference
// interpreter and the VM, so the two execution paths cannot drift apart on
// pure functions. Memory-touching library functions (memmove, strlen, ...)
// live with their respective memory models.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace patchecko::rt {

inline std::int64_t abs64(std::int64_t a) {
  return a < 0 ? static_cast<std::int64_t>(
                     0 - static_cast<std::uint64_t>(a))
               : a;
}

inline std::int64_t imin(std::int64_t a, std::int64_t b) {
  return a < b ? a : b;
}

inline std::int64_t imax(std::int64_t a, std::int64_t b) {
  return a > b ? a : b;
}

inline std::int64_t clamp64(std::int64_t v, std::int64_t lo,
                            std::int64_t hi) {
  return imin(imax(v, lo), hi);
}

/// sqrt with the domain error removed deterministically.
inline double fsqrt(double v) { return v <= 0.0 ? 0.0 : std::sqrt(v); }

/// pow with non-finite results collapsed to 0 so all targets agree.
inline double fpow(double a, double b) {
  const double r = std::pow(a, b);
  return std::isfinite(r) ? r : 0.0;
}

inline double ffloor(double v) { return std::floor(v); }

inline std::uint64_t byte_swap(std::uint64_t v) {
  v = ((v & 0x00ff00ff00ff00ffULL) << 8) | ((v >> 8) & 0x00ff00ff00ff00ffULL);
  v = ((v & 0x0000ffff0000ffffULL) << 16) |
      ((v >> 16) & 0x0000ffff0000ffffULL);
  return (v << 32) | (v >> 32);
}

/// Saturating signed add: overflow yields INT64_MAX / INT64_MIN.
inline std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out))
    return b > 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
  return out;
}

/// CRC-32 (IEEE polynomial, bitwise) step over one byte.
inline std::uint32_t crc32_step(std::uint32_t crc, std::uint8_t byte) {
  crc ^= byte;
  for (int k = 0; k < 8; ++k)
    crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
  return crc;
}

/// Wrap-around signed multiply/add/sub helpers (two's complement).
inline std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}
/// Shift counts are masked to [0,63] so all targets agree.
inline std::int64_t wrap_shl(std::int64_t a, std::int64_t s) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                   << (static_cast<std::uint64_t>(s) & 63u));
}
inline std::int64_t wrap_shr(std::int64_t a, std::int64_t s) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                   (static_cast<std::uint64_t>(s) & 63u));
}

}  // namespace patchecko::rt
