#include "similarity/similarity.h"

#include <algorithm>
#include <limits>

#include "util/stats.h"

namespace patchecko {

std::size_t DynamicProfile::successful_runs() const {
  std::size_t n = 0;
  for (const auto& entry : per_env)
    if (entry.has_value()) ++n;
  return n;
}

namespace {

std::uint64_t fnv1a(std::uint64_t hash, const std::uint8_t* data,
                    std::size_t size) {
  for (std::size_t i = 0; i < size; ++i)
    hash = (hash ^ data[i]) * 1099511628211ULL;
  return hash;
}

std::uint64_t effect_of(const RunResult& result) {
  std::uint64_t hash = 1469598103934665603ULL;
  const auto ret = static_cast<std::uint64_t>(result.ret);
  std::uint8_t ret_bytes[8];
  for (int b = 0; b < 8; ++b)
    ret_bytes[b] = static_cast<std::uint8_t>((ret >> (8 * b)) & 0xff);
  hash = fnv1a(hash, ret_bytes, sizeof(ret_bytes));
  for (const auto& buffer : result.buffers_after)
    hash = fnv1a(hash, buffer.data(), buffer.size());
  return hash;
}

}  // namespace

DynamicProfile profile_function(const Machine& machine,
                                std::size_t function_index,
                                const std::vector<CallEnv>& environments) {
  DynamicProfile profile;
  profile.per_env.reserve(environments.size());
  profile.effect_hash.reserve(environments.size());
  for (const CallEnv& env : environments) {
    const RunResult result = machine.run(function_index, env);
    if (result.status == ExecStatus::ok) {
      profile.per_env.push_back(result.features);
      profile.effect_hash.push_back(effect_of(result));
    } else {
      profile.per_env.push_back(std::nullopt);
      profile.effect_hash.push_back(std::nullopt);
    }
  }
  return profile;
}

std::size_t effect_matches(const DynamicProfile& a, const DynamicProfile& b) {
  const std::size_t k = std::min(a.effect_hash.size(), b.effect_hash.size());
  std::size_t matches = 0;
  for (std::size_t i = 0; i < k; ++i)
    if (a.effect_hash[i].has_value() && b.effect_hash[i].has_value() &&
        *a.effect_hash[i] == *b.effect_hash[i])
      ++matches;
  return matches;
}

double profile_distance(const DynamicProfile& a, const DynamicProfile& b,
                        double p) {
  const std::size_t k = std::min(a.per_env.size(), b.per_env.size());
  double total = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (!a.per_env[i].has_value() || !b.per_env[i].has_value()) continue;
    const auto va = a.per_env[i]->to_array();
    const auto vb = b.per_env[i]->to_array();
    total += minkowski_distance(va, vb, p);
    ++used;
  }
  if (used == 0) return std::numeric_limits<double>::infinity();
  return total / static_cast<double>(used);
}

std::vector<double> per_env_distances(const DynamicProfile& a,
                                      const DynamicProfile& b, double p) {
  const std::size_t k = std::min(a.per_env.size(), b.per_env.size());
  std::vector<double> distances(k,
                                std::numeric_limits<double>::quiet_NaN());
  for (std::size_t i = 0; i < k; ++i) {
    if (!a.per_env[i].has_value() || !b.per_env[i].has_value()) continue;
    distances[i] = minkowski_distance(a.per_env[i]->to_array(),
                                      b.per_env[i]->to_array(), p);
  }
  return distances;
}

std::vector<RankedCandidate> rank_by_similarity(
    const DynamicProfile& reference,
    const std::vector<CandidateProfile>& candidates, double p) {
  struct Keyed {
    RankedCandidate ranked;
    std::size_t effects = 0;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(candidates.size());
  for (const CandidateProfile& candidate : candidates) {
    Keyed k;
    k.ranked = {candidate.function_index,
                profile_distance(reference, candidate.profile, p),
                candidate.secondary};
    k.effects = effect_matches(reference, candidate.profile);
    keyed.push_back(std::move(k));
  }
  // Primary: trace distance (Eq. 1-2). Exact ties — count-identical
  // lookalikes — break first on memory-effect agreement, then on the
  // Stage-1 score.
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& x, const Keyed& y) {
                     if (x.ranked.distance != y.ranked.distance)
                       return x.ranked.distance < y.ranked.distance;
                     if (x.effects != y.effects) return x.effects > y.effects;
                     return x.ranked.secondary > y.ranked.secondary;
                   });
  std::vector<RankedCandidate> ranking;
  ranking.reserve(keyed.size());
  for (Keyed& k : keyed) ranking.push_back(k.ranked);
  return ranking;
}

}  // namespace patchecko
