// Dynamic semantic similarity (Section III-C).
//
// Each function execution yields a 21-wide dynamic feature vector; the
// similarity between a CVE function f and a candidate g is the Minkowski
// distance of order p=3 between their vectors (Eq. 1), averaged over the K
// fixed execution environments (Eq. 2). Smaller is more similar.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "binary/binary.h"
#include "source/interp.h"
#include "vm/dynamic_features.h"
#include "vm/machine.h"

namespace patchecko {

/// Per-environment dynamic feature vectors of one function. Environments
/// where the function did not terminate normally are nullopt.
/// `effect_hash` captures the paper's "ultimate effect on the memory after
/// the function finishes execution": a hash over the return value and the
/// final contents of every environment buffer. It is not part of the
/// 21-feature distance (Table II fidelity) but breaks exact trace ties
/// between count-identical lookalikes.
struct DynamicProfile {
  std::vector<std::optional<DynamicFeatures>> per_env;
  std::vector<std::optional<std::uint64_t>> effect_hash;

  std::size_t successful_runs() const;
};

/// Number of environments where both profiles succeeded with identical
/// memory/return effects.
std::size_t effect_matches(const DynamicProfile& a, const DynamicProfile& b);

/// Executes the function under every environment and records its features.
DynamicProfile profile_function(const Machine& machine,
                                std::size_t function_index,
                                const std::vector<CallEnv>& environments);

/// Eq. (1) + (2): mean Minkowski-p distance over environments where both
/// profiles succeeded. Returns +inf if no common environment exists.
double profile_distance(const DynamicProfile& a, const DynamicProfile& b,
                        double p = 3.0);

/// Eq. (1) per environment: the Minkowski-p distance in each environment,
/// NaN where either profile failed to terminate there. profile_distance()
/// is the mean of the non-NaN entries; exposing them individually feeds
/// decision provenance (why *this* environment pulled the aggregate up).
std::vector<double> per_env_distances(const DynamicProfile& a,
                                      const DynamicProfile& b, double p = 3.0);

struct RankedCandidate {
  std::size_t function_index = 0;
  double distance = 0.0;
  double secondary = 0.0;  ///< tie-break score (higher wins), e.g. Stage-1
};

struct CandidateProfile {
  std::size_t function_index = 0;
  DynamicProfile profile;
  double secondary = 0.0;
};

/// Sorts candidates by ascending distance to the reference profile; exact
/// distance ties (family lookalikes whose traces coincide on every
/// environment) break on the higher secondary score.
std::vector<RankedCandidate> rank_by_similarity(
    const DynamicProfile& reference,
    const std::vector<CandidateProfile>& candidates, double p = 3.0);

}  // namespace patchecko
