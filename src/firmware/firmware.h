// Firmware images and the paper's evaluation corpus (Dataset III).
//
// Two devices are modelled after the paper's testbed:
//   * Android Things 1.0 (05/2018 security patch level) — ARM 32-bit
//   * Google Pixel 2 XL (Android 8.0, 07/2017 patch level) — ARM 64-bit
// Sixteen libraries are sized to the per-CVE "Total" column of Table VI so
// the candidate-set arithmetic (TP/TN/FP/FN) lands on the same denominators.
// Each device's image links either the vulnerable or the patched version of
// every CVE function according to that device's patch level, then strips all
// symbols — the COTS condition PATCHECKO operates under.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "binary/binary.h"
#include "source/ast.h"
#include "source/mutate.h"

namespace patchecko {

struct EvalLibrarySpec {
  std::string name;
  std::size_t function_count = 0;
};

struct CveSpec {
  std::string cve_id;
  std::string library;   ///< EvalLibrarySpec::name of the host library
  PatchKind kind = PatchKind::add_bounds_guard;
};

struct DeviceSpec {
  std::string name;
  Arch arch = Arch::arm32;
  OptLevel opt = OptLevel::O2;
  std::string patch_level;
  std::vector<std::string> patched_cves;

  bool is_patched(const std::string& cve_id) const;
};

/// The 16 evaluation libraries (paper Table VI "Total" column).
std::vector<EvalLibrarySpec> standard_libraries();
/// The 25 evaluated CVEs with their host libraries and patch shapes.
std::vector<CveSpec> standard_cves();
/// Android Things 1.0 (ground-truth patch set from Table VIII).
DeviceSpec android_things_device();
/// Google Pixel 2 XL (07/2017 patch level: almost everything unpatched).
DeviceSpec pixel2xl_device();

struct EvalConfig {
  /// Scales library function counts (tests use ~0.02, benches 1.0).
  double scale = 1.0;
  std::uint64_t seed = 0xDA7A00;
  /// Reference (vulnerability database) build settings. Cross-platform by
  /// default: x86-family references vs ARM targets. The paper's case study
  /// compiled references at -O0; we default to -O2 so the database's
  /// *dynamic* profiles are comparable to vendor production builds — a
  /// documented substitution (DESIGN.md), ablated in bench_ablation_features.
  Arch db_arch = Arch::amd64;
  OptLevel db_opt = OptLevel::O2;
};

/// One CVE planted in a library: its slot and the source-level pair.
struct HostedCve {
  CveSpec spec;
  std::size_t library_index = 0;
  std::size_t slot = 0;
  VulnPatchPair pair;
};

struct FirmwareImage {
  std::string device;
  std::vector<LibraryBinary> libraries;  ///< stripped

  std::size_t total_functions() const;
};

/// On-disk firmware format ("PKFW"): the unit a vendor would ship and a
/// pentester would load. Round-trips through serialize_library per library.
bool save_firmware(const FirmwareImage& image, const std::string& path);
std::optional<FirmwareImage> load_firmware(const std::string& path);

/// Generates and owns the whole evaluation universe.
class EvalCorpus {
 public:
  explicit EvalCorpus(const EvalConfig& config);

  const EvalConfig& config() const { return config_; }
  const std::vector<EvalLibrarySpec>& library_specs() const {
    return library_specs_;
  }
  const std::vector<HostedCve>& hosted_cves() const { return hosted_; }
  const HostedCve& hosted(const std::string& cve_id) const;

  /// Source of library `index` with the *vulnerable* version of every hosted
  /// CVE in place.
  const SourceLibrary& vulnerable_source(std::size_t index) const {
    return sources_[index];
  }

  /// Source with the patch status each CVE has on `device`.
  SourceLibrary source_for_device(std::size_t index,
                                  const DeviceSpec& device) const;

  /// Compiles library `index` for a device (stripped) — uids are stable
  /// across devices and build settings for ground-truth bookkeeping.
  LibraryBinary compile_for_device(std::size_t index,
                                   const DeviceSpec& device) const;

  /// Full firmware image for a device.
  FirmwareImage build_firmware(const DeviceSpec& device) const;

  /// Reference build of library `index` at database settings, with the
  /// vulnerable versions in place (unstripped).
  LibraryBinary compile_reference(std::size_t index) const;

  /// Ground-truth uid of a hosted CVE's target function.
  std::uint64_t target_uid(const HostedCve& cve) const;

  /// Stable uid namespace of library `index`: function f compiles with
  /// source_uid == uid_base(index) + f in every build variant. Exposed so
  /// the prebuilt-corpus builder (src/corpus) can compile matrix variants
  /// bit-identical to compile_reference/compile_for_device output.
  std::uint64_t uid_base(std::size_t library_index) const;

  /// Ground-truth symbol name (available to the evaluation harness even
  /// though device binaries are stripped).
  const std::string& function_name(std::size_t library_index,
                                   std::size_t function_index) const {
    return sources_[library_index].functions[function_index].name;
  }

  std::size_t library_index(const std::string& name) const;

 private:
  EvalConfig config_;
  std::vector<EvalLibrarySpec> library_specs_;
  std::vector<SourceLibrary> sources_;  // vulnerable versions inserted
  std::vector<HostedCve> hosted_;
};

}  // namespace patchecko
