#include "firmware/firmware.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "compiler/compiler.h"
#include "source/generator.h"
#include "util/rng.h"

namespace patchecko {

bool DeviceSpec::is_patched(const std::string& cve_id) const {
  return std::find(patched_cves.begin(), patched_cves.end(), cve_id) !=
         patched_cves.end();
}

std::size_t FirmwareImage::total_functions() const {
  std::size_t total = 0;
  for (const LibraryBinary& lib : libraries) total += lib.function_count();
  return total;
}

namespace {
constexpr std::uint32_t firmware_magic = 0x504b4657;  // "PKFW"
}

bool save_firmware(const FirmwareImage& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  auto put_u32 = [&](std::uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_u32(firmware_magic);
  put_u32(static_cast<std::uint32_t>(image.device.size()));
  out.write(image.device.data(),
            static_cast<std::streamsize>(image.device.size()));
  put_u32(static_cast<std::uint32_t>(image.libraries.size()));
  for (const LibraryBinary& lib : image.libraries) {
    const std::vector<std::uint8_t> bytes = serialize_library(lib);
    put_u32(static_cast<std::uint32_t>(bytes.size()));
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  return static_cast<bool>(out);
}

std::optional<FirmwareImage> load_firmware(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  auto get_u32 = [&]() {
    std::uint32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  if (get_u32() != firmware_magic) return std::nullopt;
  FirmwareImage image;
  const std::uint32_t name_len = get_u32();
  if (!in || name_len > (1u << 16)) return std::nullopt;
  image.device.resize(name_len);
  in.read(image.device.data(), name_len);
  const std::uint32_t lib_count = get_u32();
  if (!in || lib_count > (1u << 16)) return std::nullopt;
  for (std::uint32_t i = 0; i < lib_count; ++i) {
    const std::uint32_t size = get_u32();
    if (!in || size > (1u << 30)) return std::nullopt;
    std::vector<std::uint8_t> bytes(size);
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in) return std::nullopt;
    try {
      image.libraries.push_back(deserialize_library(bytes));
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return image;
}

std::vector<EvalLibrarySpec> standard_libraries() {
  // Function counts reproduce the per-CVE "Total" column of Table VI.
  return {
      {"libmediaextract", 1183}, {"libexif", 987},
      {"libmtp", 357},           {"libminijail", 116},
      {"libhevc", 1433},         {"libnfc", 1020},
      {"libdrmframework", 617},  {"libsonivox", 467},
      {"libskia", 2538},         {"libvorbis", 653},
      {"libbluetooth_gatt", 180}, {"libwebview", 13729},
      {"libopus", 735},          {"libmpeg2", 1181},
      {"libavc", 594},           {"libstagefright", 5646},
  };
}

std::vector<CveSpec> standard_cves() {
  // Host-library assignment groups CVEs that share a Table VI "Total".
  // Patch shapes: CVE-2018-9412 is the paper's case-study memmove removal
  // (Figure 6); CVE-2018-9470 is the one-integer patch the differential
  // engine misses; the rest cycle through the common bulletin patch shapes.
  // Explicit shape assignment. CVEs patched on Android Things carry small
  // patches (detectable from either reference) — except CVE-2017-13209,
  // whose patch restructures the function so much that the vulnerable-query
  // DL stage misses the patched target, reproducing the paper's single N/A
  // row of Table VI.
  struct Row {
    const char* id;
    const char* library;
    PatchKind kind;
  };
  const Row rows[] = {
      {"CVE-2018-9451", "libmediaextract", PatchKind::add_bounds_guard},
      {"CVE-2018-9340", "libmediaextract", PatchKind::off_by_one},
      {"CVE-2017-13232", "libexif", PatchKind::off_by_one},
      {"CVE-2018-9345", "libmtp", PatchKind::remove_memmove_loop},
      {"CVE-2018-9420", "libminijail", PatchKind::add_bounds_guard},
      {"CVE-2017-13210", "libminijail", PatchKind::add_skip_condition},
      {"CVE-2018-9470", "libhevc", PatchKind::constant_tweak},
      {"CVE-2017-13209", "libnfc", PatchKind::remove_memmove_loop},
      {"CVE-2018-9411", "libnfc", PatchKind::add_skip_condition},
      {"CVE-2017-13252", "libdrmframework", PatchKind::add_bounds_guard},
      {"CVE-2017-13253", "libdrmframework", PatchKind::off_by_one},
      {"CVE-2018-9499", "libdrmframework", PatchKind::remove_memmove_loop},
      {"CVE-2018-9424", "libdrmframework", PatchKind::add_bounds_guard},
      {"CVE-2018-9491", "libsonivox", PatchKind::off_by_one},
      {"CVE-2017-13278", "libskia", PatchKind::add_skip_condition},
      {"CVE-2018-9410", "libvorbis", PatchKind::remove_memmove_loop},
      {"CVE-2017-13208", "libbluetooth_gatt", PatchKind::off_by_one},
      {"CVE-2018-9498", "libwebview", PatchKind::add_bounds_guard},
      {"CVE-2017-13279", "libopus", PatchKind::add_bounds_guard},
      {"CVE-2018-9440", "libopus", PatchKind::add_skip_condition},
      {"CVE-2018-9427", "libmpeg2", PatchKind::remove_memmove_loop},
      {"CVE-2017-13178", "libavc", PatchKind::add_bounds_guard},
      {"CVE-2017-13180", "libavc", PatchKind::off_by_one},
      {"CVE-2018-9412", "libstagefright", PatchKind::remove_memmove_loop},
      {"CVE-2017-13182", "libstagefright", PatchKind::add_skip_condition},
  };
  std::vector<CveSpec> cves;
  for (const Row& row : rows) {
    CveSpec spec;
    spec.cve_id = row.id;
    spec.library = row.library;
    spec.kind = row.kind;
    cves.push_back(std::move(spec));
  }
  return cves;
}

DeviceSpec android_things_device() {
  DeviceSpec device;
  device.name = "Android Things 1.0";
  device.arch = Arch::arm32;
  device.opt = OptLevel::O2;
  device.patch_level = "2018-05";
  // Ground truth of Table VIII: ten CVEs patched at the 05/2018 level.
  device.patched_cves = {
      "CVE-2017-13232", "CVE-2017-13210", "CVE-2017-13209",
      "CVE-2017-13252", "CVE-2017-13253", "CVE-2017-13278",
      "CVE-2017-13208", "CVE-2017-13279", "CVE-2017-13180",
      "CVE-2017-13182",
  };
  return device;
}

DeviceSpec pixel2xl_device() {
  DeviceSpec device;
  device.name = "Google Pixel 2 XL";
  device.arch = Arch::arm64;
  device.opt = OptLevel::O2;
  device.patch_level = "2017-07";
  // The paper reports only the 07/2017 patch level for this device; we model
  // it as almost fully unpatched (documented substitution in DESIGN.md).
  device.patched_cves = {"CVE-2017-13208", "CVE-2017-13209"};
  return device;
}

namespace {

std::uint64_t uid_base_for(std::size_t library_index) {
  return (static_cast<std::uint64_t>(library_index) + 1) << 32;
}

}  // namespace

EvalCorpus::EvalCorpus(const EvalConfig& config) : config_(config) {
  library_specs_ = standard_libraries();
  for (EvalLibrarySpec& spec : library_specs_)
    spec.function_count = std::max<std::size_t>(
        24, static_cast<std::size_t>(std::llround(
                static_cast<double>(spec.function_count) * config.scale)));

  Rng rng(config.seed);
  sources_.reserve(library_specs_.size());
  for (std::size_t i = 0; i < library_specs_.size(); ++i) {
    const std::uint64_t lib_seed = rng.fork(i + 101)();
    sources_.push_back(generate_library(library_specs_[i].name, lib_seed,
                                        library_specs_[i].function_count));
  }

  // Plant the CVE pairs. Slots spread through the upper half of each
  // library, far enough in that dispatcher-style patches have callees.
  std::map<std::string, std::size_t> per_library_counter;
  for (const CveSpec& spec : standard_cves()) {
    const std::size_t lib = library_index(spec.library);
    const std::size_t k = per_library_counter[spec.library]++;
    const std::size_t n = sources_[lib].functions.size();
    // The slot's original function must not be callable by later
    // dispatchers (i.e. must have a ptr parameter), so swapping in a CVE
    // function of a different signature cannot corrupt any call site.
    std::size_t slot = (n / 2 + 7 * k) % n;
    for (std::size_t probe = 0; probe < n; ++probe) {
      const auto& types =
          sources_[lib].functions[(slot + probe) % n].param_types;
      const bool has_ptr =
          std::find(types.begin(), types.end(), ValueType::ptr) !=
          types.end();
      if (has_ptr) {
        slot = (slot + probe) % n;
        break;
      }
    }

    HostedCve hosted;
    hosted.spec = spec;
    hosted.library_index = lib;
    hosted.slot = slot;
    Rng pair_rng = rng.fork(0xCDE000 + hosted_.size());
    hosted.pair = generate_vuln_patch_pair(spec.kind, pair_rng,
                                           static_cast<int>(slot));
    // Pretty ground-truth symbol names (Table IV flavour).
    const std::string pretty =
        spec.cve_id == "CVE-2018-9412"
            ? "ZN7android3ID323removeUnsynchronizationEv"
            : "cve_" + spec.cve_id.substr(4) + "_target";
    hosted.pair.vulnerable.name = pretty;
    hosted.pair.patched.name = pretty;

    sources_[lib].functions[slot] = hosted.pair.vulnerable;
    hosted_.push_back(std::move(hosted));
  }
}

const HostedCve& EvalCorpus::hosted(const std::string& cve_id) const {
  for (const HostedCve& cve : hosted_)
    if (cve.spec.cve_id == cve_id) return cve;
  throw std::out_of_range("EvalCorpus: unknown CVE " + cve_id);
}

std::size_t EvalCorpus::library_index(const std::string& name) const {
  for (std::size_t i = 0; i < library_specs_.size(); ++i)
    if (library_specs_[i].name == name) return i;
  throw std::out_of_range("EvalCorpus: unknown library " + name);
}

SourceLibrary EvalCorpus::source_for_device(std::size_t index,
                                            const DeviceSpec& device) const {
  SourceLibrary source = sources_[index];
  for (const HostedCve& cve : hosted_) {
    if (cve.library_index != index) continue;
    if (device.is_patched(cve.spec.cve_id))
      source.functions[cve.slot] = cve.pair.patched;
  }
  return source;
}

LibraryBinary EvalCorpus::compile_for_device(std::size_t index,
                                             const DeviceSpec& device) const {
  const SourceLibrary source = source_for_device(index, device);
  LibraryBinary binary = compile_library(source, device.arch, device.opt,
                                         uid_base_for(index));
  binary.strip();
  return binary;
}

FirmwareImage EvalCorpus::build_firmware(const DeviceSpec& device) const {
  FirmwareImage image;
  image.device = device.name;
  image.libraries.reserve(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i)
    image.libraries.push_back(compile_for_device(i, device));
  return image;
}

LibraryBinary EvalCorpus::compile_reference(std::size_t index) const {
  return compile_library(sources_[index], config_.db_arch, config_.db_opt,
                         uid_base_for(index));
}

std::uint64_t EvalCorpus::target_uid(const HostedCve& cve) const {
  return uid_base_for(cve.library_index) + cve.slot;
}

std::uint64_t EvalCorpus::uid_base(std::size_t library_index) const {
  return uid_base_for(library_index);
}

}  // namespace patchecko
